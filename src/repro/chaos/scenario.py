"""Declarative chaos scenarios.

A :class:`Scenario` is a timeline of :class:`FaultEvent`\\ s injected into a
cluster while a YCSB load runs against it: crash and restart nodes, cut and
heal partitions, drop/delay/reorder messages, skew clocks, and change the
TrueTime uncertainty bound.  The same scenario object drives both backends —
the simulated clusters and the live asyncio TCP runtime — through
:func:`repro.chaos.engine.run_scenario`.

The oracle needs to know *when* misbehavior was allowed:
:meth:`Scenario.fault_windows` derives the closed intervals during which each
injected fault (plus ``window_slack_ms`` of recovery time) was active.  A
consistency violation whose epoch falls entirely outside every window is a
real bug; one inside a window is the injected fault doing its job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FaultEvent", "Scenario", "ACTIONS"]

#: Recognised fault actions, and what ``target``/``args`` mean for each:
#:
#: ``crash``       kill -9 node ``target`` (WAL frozen, endpoint dead)
#: ``restart``     restart node ``target``, recovering from its WAL
#: ``partition``   split the cluster into ``args["groups"]`` (lists of node
#:                 names; the placeholder ``"@clients"`` expands to every
#:                 client session name)
#: ``heal``        remove the partition
#: ``drop``        drop matching messages (``args``: src/dst/kinds/probability)
#: ``delay``       delay + optionally reorder matching messages
#:                 (``args``: extra_ms/jitter_ms/reorder/src/dst/kinds/probability)
#: ``clear_rules`` remove all drop/delay rules
#: ``skew``        offset node ``target``'s clock by ``args["offset_ms"]``
#:                 (0 restores; Spanner backends only)
#: ``epsilon``     set the TrueTime uncertainty to ``args["epsilon_ms"]``
#:                 (``args["restore"]: True`` marks the sweep's end)
ACTIONS = ("crash", "restart", "partition", "heal", "drop", "delay",
           "clear_rules", "skew", "epsilon")


@dataclass(frozen=True)
class FaultEvent:
    """One step of the nemesis timeline, ``at_ms`` after load start."""

    at_ms: float
    action: str
    target: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r} "
                             f"(known: {ACTIONS})")
        if self.at_ms < 0:
            raise ValueError("at_ms must be >= 0")


@dataclass
class Scenario:
    """A named fault-injection experiment over a YCSB load."""

    name: str
    protocol: str
    description: str
    events: List[FaultEvent] = field(default_factory=list)
    #: Load duration (scenario-relative ms); the run ends when every client
    #: loop passes its deadline and in-flight operations resolve or time out.
    duration_ms: float = 2_400.0
    num_servers: int = 3
    num_clients: int = 4
    write_ratio: float = 0.5
    conflict_rate: float = 0.2
    seed: int = 1
    #: Declared consistency level (None = the protocol's native level).
    level: Optional[str] = None
    #: Client-side operation timeout: an operation still unresolved after
    #: this long (e.g. stuck on a crashed node) is interrupted and recorded
    #: as an ``abandon`` — the history stays well-formed under faults.
    op_timeout_ms: float = 400.0
    #: Closed-loop think time between operations.  Nonzero think time gives
    #: the run quiescent instants, which is where the streaming checker can
    #: cut epochs — finer epochs localize violations to fault windows.
    think_time_ms: float = 15.0
    #: Recovery slack appended to every fault window: effects of a fault
    #: (retries, reconnects, recovering nodes) linger briefly after the
    #: fault itself is lifted.
    window_slack_ms: float = 300.0
    #: A scenario whose faults are *within spec* (clock skew below epsilon,
    #: a widened epsilon): the checker must stay fully satisfied, fault
    #: windows notwithstanding.
    expect_clean: bool = False
    #: Spanner leader-lease duration (ms); leases are always in play for
    #: Spanner chaos runs so crash scenarios exercise failover fencing.
    lease_ms: float = 400.0

    # ------------------------------------------------------------------ #
    def sorted_events(self) -> List[FaultEvent]:
        return sorted(self.events, key=lambda e: e.at_ms)

    def crashed_nodes(self) -> List[str]:
        """Nodes the timeline crashes (in event order, deduplicated)."""
        seen: List[str] = []
        for event in self.sorted_events():
            if event.action == "crash" and event.target not in seen:
                seen.append(event.target)
        return seen

    def fault_windows(self) -> List[Tuple[float, float]]:
        """Closed ``[start, end]`` intervals (scenario-relative ms) during
        which injected faults license misbehavior.

        Openers pair with their closers — ``crash``/``restart`` per node,
        ``partition``/``heal``, ``drop``+``delay``/``clear_rules``,
        ``skew``/``skew(offset 0)`` per node, ``epsilon``/
        ``epsilon(restore)`` — and every closed window is extended by
        ``window_slack_ms`` of recovery time.  An unclosed fault stays open
        through the end of the run.
        """
        open_at: Dict[Tuple[str, Optional[str]], float] = {}
        windows: List[Tuple[float, float]] = []

        def open_window(key, at):
            open_at.setdefault(key, at)

        def close_window(key, at):
            start = open_at.pop(key, None)
            if start is not None:
                windows.append((start, at + self.window_slack_ms))

        for event in self.sorted_events():
            action, at = event.action, event.at_ms
            if action == "crash":
                open_window(("crash", event.target), at)
            elif action == "restart":
                close_window(("crash", event.target), at)
            elif action == "partition":
                open_window(("partition", None), at)
            elif action == "heal":
                close_window(("partition", None), at)
            elif action in ("drop", "delay"):
                open_window(("rules", None), at)
            elif action == "clear_rules":
                close_window(("rules", None), at)
            elif action == "skew":
                if event.args.get("offset_ms", 0.0):
                    open_window(("skew", event.target), at)
                else:
                    close_window(("skew", event.target), at)
            elif action == "epsilon":
                if event.args.get("restore"):
                    close_window(("epsilon", None), at)
                else:
                    open_window(("epsilon", None), at)
        end = self.duration_ms + self.op_timeout_ms + self.window_slack_ms
        for start in open_at.values():
            windows.append((start, end))
        windows.sort()
        return windows
