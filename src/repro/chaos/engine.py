"""The chaos engine: run a :class:`~repro.chaos.scenario.Scenario` against a
simulated or live cluster and verify the declared guarantees held.

One scenario, two backends, one oracle:

* **sim** — a :class:`~repro.gryff.cluster.GryffCluster` /
  :class:`~repro.spanner.cluster.SpannerCluster` with a
  :class:`~repro.chaos.faults.FaultController` on its network and per-node
  write-ahead logs; the nemesis is a simulation process stepping the event
  timeline.
* **live** — one :class:`~repro.net.cluster.LiveProcess` per server node
  over real asyncio TCP (ephemeral ports, shared cluster spec), a
  :class:`~repro.api.store.LiveStore` of clients, and an async nemesis task.

Either way the load is the same YCSB workload through the unified
:mod:`repro.api` surface, the history streams through the existing
:class:`~repro.net.recorder.TraceWriter` pipeline, and the verdict comes
from the streaming checker: every epoch the declared consistency level holds,
or the violating epoch overlaps a declared fault window.  Crashed nodes'
stuck operations are closed as ``abandon`` records by a per-operation
timeout, and each restarted node's recovered state is compared against the
exact durable state it crashed with.
"""

from __future__ import annotations

import asyncio
import tempfile
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api import open_store, ycsb_executor
from repro.api.levels import negotiate
from repro.chaos.faults import FaultController
from repro.chaos.scenario import FaultEvent, Scenario
from repro.core.events import Operation
from repro.core.history import History
from repro.net.recorder import RecordingHistory, TraceWriter
from repro.sim.stats import LatencyRecorder
from repro.workloads.clients import ClosedLoopDriver
from repro.workloads.ycsb import YcsbWorkload

__all__ = ["NodeRecovery", "ChaosReport", "run_scenario",
           "augment_gryff_with_server_installs"]

GRYFF_PROTOCOLS = ("gryff", "gryff-rsc")
SPANNER_PROTOCOLS = ("spanner", "spanner-rss")


# --------------------------------------------------------------------------- #
# Report
# --------------------------------------------------------------------------- #
@dataclass
class NodeRecovery:
    """Outcome of one crash/restart cycle: does the recovered durable state
    equal the state the node crashed with?"""

    node: str
    matches: bool
    detail: str = ""


@dataclass
class ChaosReport:
    """Everything :func:`run_scenario` measured, plus the verdict."""

    scenario: str
    backend: str
    protocol: str
    model: str
    expect_clean: bool
    ops: int = 0
    epochs: int = 0
    satisfied: bool = True
    #: ``EpochVerdict.describe()`` of every violating epoch.
    violations: List[str] = field(default_factory=list)
    #: Violating epochs that do NOT overlap any fault window — real bugs.
    violations_outside_windows: List[str] = field(default_factory=list)
    recoveries: List[NodeRecovery] = field(default_factory=list)
    fault_windows: List[Tuple[float, float]] = field(default_factory=list)
    fault_counters: Dict[str, int] = field(default_factory=dict)
    #: Spanner only: ``(time, holder, term)`` lease grants per shard.
    lease_transitions: Dict[str, List[Tuple]] = field(default_factory=dict)
    abandoned: int = 0
    reconstructed: int = 0
    trace_path: Optional[str] = None

    @property
    def recovered_cleanly(self) -> bool:
        return all(r.matches for r in self.recoveries)

    @property
    def ok(self) -> bool:
        """The scenario's guarantee: load actually ran, every restarted node
        recovered its exact pre-crash durable state, and the only consistency
        violations (if any) fall inside declared fault windows — none at all
        for ``expect_clean`` scenarios."""
        if self.ops == 0 or not self.recovered_cleanly:
            return False
        if self.expect_clean:
            return self.satisfied
        return not self.violations_outside_windows

    def describe(self) -> str:
        lines = [
            f"scenario {self.scenario} [{self.backend}] "
            f"protocol={self.protocol} model={self.model}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  ops={self.ops} epochs={self.epochs} abandoned={self.abandoned}"
            f" reconstructed={self.reconstructed}",
        ]
        if self.fault_counters:
            counts = " ".join(f"{k}={v}"
                              for k, v in sorted(self.fault_counters.items()))
            lines.append(f"  faults: {counts}")
        for recovery in self.recoveries:
            status = "recovered" if recovery.matches else "DIVERGED"
            suffix = f" ({recovery.detail})" if recovery.detail else ""
            lines.append(f"  {recovery.node}: {status}{suffix}")
        for name, transitions in sorted(self.lease_transitions.items()):
            terms = ", ".join(f"term {term}@{t:.0f}ms"
                              for t, _holder, term in transitions)
            lines.append(f"  lease {name}: {terms}")
        if self.violations:
            inside = len(self.violations) - len(self.violations_outside_windows)
            lines.append(f"  violations: {len(self.violations)} "
                         f"({inside} inside fault windows)")
            for text in self.violations_outside_windows:
                lines.append(f"    OUTSIDE WINDOW: {text}")
        else:
            lines.append("  violations: none")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "protocol": self.protocol,
            "model": self.model,
            "ok": self.ok,
            "ops": self.ops,
            "epochs": self.epochs,
            "satisfied": self.satisfied,
            "abandoned": self.abandoned,
            "reconstructed": self.reconstructed,
            "violations": list(self.violations),
            "violations_outside_windows": list(self.violations_outside_windows),
            "recoveries": [{"node": r.node, "matches": r.matches,
                            "detail": r.detail} for r in self.recoveries],
            "fault_windows": [list(w) for w in self.fault_windows],
            "fault_counters": dict(self.fault_counters),
            "lease_transitions": {k: [list(t) for t in v]
                                  for k, v in self.lease_transitions.items()},
            "trace": self.trace_path,
        }


# --------------------------------------------------------------------------- #
# Durable-state snapshots (recovery determinism oracle)
# --------------------------------------------------------------------------- #
def _gryff_snapshot(replica) -> Dict[str, Any]:
    return {key: (replica.values.get(key), carstamp.as_tuple())
            for key, carstamp in replica.carstamps.items()}


def _spanner_snapshot(shard) -> Dict[str, Any]:
    return {"versions": sorted(shard.store.all_versions())}


def _node_snapshot(node) -> Dict[str, Any]:
    if hasattr(node, "carstamps"):
        return _gryff_snapshot(node)
    return _spanner_snapshot(node)


def _compare_recovery(name: str, before: Dict[str, Any],
                      node) -> NodeRecovery:
    after = _node_snapshot(node)
    if before == after:
        return NodeRecovery(node=name, matches=True)
    return NodeRecovery(
        node=name, matches=False,
        detail=f"recovered state differs from the pre-crash durable state "
               f"({len(str(before))}B expected, {len(str(after))}B recovered)")


# --------------------------------------------------------------------------- #
# History augmentation: server state the clients never saw
# --------------------------------------------------------------------------- #
def augment_gryff_with_server_installs(history: History,
                                       invoked_at: float = 0.0) -> History:
    """Add pending writes for carstamps that were read but never recorded.

    An abandoned write (client timed out mid-protocol) can still install its
    value on a quorum; later reads then return a ``(key, carstamp)`` no
    operation in the history wrote.  The model's "add zero or more
    responses" clause covers this: synthesize the missing write as a
    *pending* operation by its writer (the carstamp names it), invoked no
    later than the first read that observed it and ``invoked_at``.
    """
    written: set = set()
    observed: Dict[Tuple[str, Tuple], Tuple[Any, float]] = {}
    for op in history:
        carstamp = tuple(op.meta.get("carstamp", (0, 0, "")))
        if carstamp == (0, 0, ""):
            continue
        if op.is_mutation:
            written.add((op.key, carstamp))
        elif op.is_complete:
            key = (op.key, carstamp)
            if key not in observed or op.invoked_at < observed[key][1]:
                observed[key] = (op.value, op.invoked_at)
    orphans = {key: seen for key, seen in observed.items()
               if key not in written}
    if not orphans:
        return history
    augmented = History()
    augmented.extend(history)
    for (key, carstamp), (value, first_read_at) in sorted(
            orphans.items(), key=lambda item: repr(item[0])):
        writer = carstamp[2] or "unknown"
        augmented.add(Operation.write(
            writer, key, value,
            invoked_at=min(invoked_at, first_read_at), responded_at=None,
            carstamp=carstamp, reconstructed=True,
        ))
    return augmented


def _augmented_history(protocol: str, history: History, nodes,
                       invoked_at: float) -> History:
    if protocol in GRYFF_PROTOCOLS:
        return augment_gryff_with_server_installs(history, invoked_at)
    from repro.spanner.cluster import augment_with_server_commits

    return augment_with_server_commits(history, nodes, invoked_at=invoked_at)


# --------------------------------------------------------------------------- #
# Checking and judging
# --------------------------------------------------------------------------- #
def _check_and_judge(report: ChaosReport, scenario: Scenario,
                     augmented: History, run_start: float) -> None:
    from repro.core.checkers.streaming import stream_history
    from repro.net.check import streaming_checker_for

    checker = streaming_checker_for(report.protocol, model=report.model,
                                    min_epoch_ops=8)
    stream = stream_history(augmented, report.model, checker=checker)
    report.ops = stream.ops_checked
    report.epochs = stream.epochs
    report.satisfied = stream.satisfied
    windows = [(run_start + start, run_start + end)
               for start, end in scenario.fault_windows()]
    report.fault_windows = [(round(s, 3), round(e, 3)) for s, e in windows]
    for verdict in stream.verdicts:
        if verdict.satisfied is not False:
            continue
        report.violations.append(verdict.describe())
        start = verdict.start_time if verdict.start_time is not None else 0.0
        end = (verdict.end_time if verdict.end_time is not None
               else float("inf"))
        inside = any(start <= w_end and end >= w_start
                     for w_start, w_end in windows)
        if not inside:
            report.violations_outside_windows.append(verdict.describe())


# --------------------------------------------------------------------------- #
# Load plumbing shared by both backends
# --------------------------------------------------------------------------- #
def _timeout_executor(env, op_timeout_ms: float, counter: List[int]):
    """Wrap the YCSB executor with a client-side operation timeout.

    An operation stuck past the timeout (its server crashed or is
    partitioned away) is interrupted and announced as abandoned — the
    invocation is closed in the trace and the closed loop moves on, exactly
    what a real client with a request deadline does.
    """
    def run(session, spec):
        proc = env.process(ycsb_executor(session, spec))
        yield env.any_of([proc, env.timeout(op_timeout_ms)])
        if proc.is_alive:
            proc.interrupt()
            session._client._note_abandoned()
            counter[0] += 1

    return run


def _build_sessions(store, scenario: Scenario, sites: List[str]):
    sessions = []
    for index in range(scenario.num_clients):
        site = sites[index % len(sites)]
        sessions.append(store.session(
            site=site, name=f"chaos{index + 1}@{site}",
            level=scenario.level))
    return sessions


def _build_pairs(sessions, scenario: Scenario):
    return [
        (session, YcsbWorkload(client_id=session.name,
                               write_ratio=scenario.write_ratio,
                               conflict_rate=scenario.conflict_rate,
                               seed=scenario.seed * 1000 + index))
        for index, session in enumerate(sessions)
    ]


def _trace_writer(path: str, scenario: Scenario, backend: str,
                  model: str) -> TraceWriter:
    return TraceWriter(path, meta={
        "protocol": scenario.protocol,
        "level": negotiate(scenario.protocol, scenario.level).value,
        "scenario": scenario.name,
        "backend": backend,
        "model": model,
    }, fsync=False)


def _resolve_groups(groups, session_names: List[str]) -> List[List[str]]:
    resolved = []
    for group in groups:
        members: List[str] = []
        for name in group:
            if name == "@clients":
                members.extend(session_names)
            else:
                members.append(name)
        resolved.append(members)
    return resolved


def _apply_rule_event(controller: FaultController, event: FaultEvent,
                      session_names: List[str]) -> None:
    """Partition / drop / delay / clear_rules — identical on both backends."""
    args = event.args
    if event.action == "partition":
        controller.partition(*_resolve_groups(args["groups"], session_names))
    elif event.action == "heal":
        controller.heal()
    elif event.action == "drop":
        controller.drop_matching(src=args.get("src"), dst=args.get("dst"),
                                 kinds=args.get("kinds"),
                                 probability=args.get("probability", 1.0))
    elif event.action == "delay":
        controller.delay_matching(args.get("extra_ms", 20.0),
                                  src=args.get("src"), dst=args.get("dst"),
                                  kinds=args.get("kinds"),
                                  jitter_ms=args.get("jitter_ms", 0.0),
                                  reorder=args.get("reorder", True),
                                  probability=args.get("probability", 1.0))
    elif event.action == "clear_rules":
        controller.clear_rules()


def _first_window_start(scenario: Scenario) -> float:
    windows = scenario.fault_windows()
    return windows[0][0] if windows else 0.0


# --------------------------------------------------------------------------- #
# Simulated backend
# --------------------------------------------------------------------------- #
def _run_sim(scenario: Scenario, trace_dir: str,
             metrics: Optional[Any] = None) -> ChaosReport:
    protocol = scenario.protocol
    model = negotiate(protocol, scenario.level).checker_model
    report = ChaosReport(scenario=scenario.name, backend="sim",
                         protocol=protocol, model=model,
                         expect_clean=scenario.expect_clean)
    wal_dir = os.path.join(trace_dir, "wal")
    os.makedirs(wal_dir, exist_ok=True)

    leases: Dict[str, Any] = {}
    if protocol in GRYFF_PROTOCOLS:
        from repro.gryff.cluster import GryffCluster
        from repro.gryff.config import GryffConfig, GryffVariant

        sites = ["CA", "VA", "IR", "OR", "JP"][:scenario.num_servers]
        variant = (GryffVariant.GRYFF if protocol == "gryff"
                   else GryffVariant.GRYFF_RSC)
        cluster = GryffCluster(GryffConfig(variant=variant, sites=sites,
                                           seed=scenario.seed),
                               wal_dir=wal_dir)
    else:
        from repro.spanner.cluster import SpannerCluster
        from repro.spanner.config import SpannerConfig, Variant
        from repro.spanner.replication import LeaderLease

        variant = (Variant.SPANNER if protocol == "spanner"
                   else Variant.SPANNER_RSS)
        config = SpannerConfig(variant=variant,
                               num_shards=scenario.num_servers,
                               seed=scenario.seed)
        leases = {config.shard_name(i): LeaderLease(scenario.lease_ms)
                  for i in range(scenario.num_servers)}
        cluster = SpannerCluster(config, wal_dir=wal_dir, leases=leases)

    controller = FaultController(seed=scenario.seed)
    cluster.network.faults = controller
    trace_path = os.path.join(trace_dir, "trace.jsonl")
    writer = _trace_writer(trace_path, scenario, "sim", model)
    cluster.history = RecordingHistory(writer)
    report.trace_path = trace_path

    store = open_store(cluster)
    sites = list(cluster.config.sites)
    sessions = _build_sessions(store, scenario, sites)
    session_names = [session.name for session in sessions]
    abandoned = [0]
    driver = ClosedLoopDriver(
        cluster.env, _build_pairs(sessions, scenario),
        executor=_timeout_executor(cluster.env, scenario.op_timeout_ms,
                                   abandoned),
        duration_ms=scenario.duration_ms,
        think_time_ms=scenario.think_time_ms)

    def node_map():
        return (cluster.replicas if protocol in GRYFF_PROTOCOLS
                else cluster.shards)

    if metrics is not None:
        from repro.obs.instrument import (
            instrument_fault_controller,
            instrument_node,
        )

        instrument_fault_controller(metrics, controller)
        # Getters read through node_map so crash/restart replacements are
        # followed at the next scrape.
        for node_name in list(node_map()):
            instrument_node(metrics, node_name,
                            (lambda n: lambda: node_map()[n])(node_name))

    snapshots: Dict[str, Dict[str, Any]] = {}

    def nemesis():
        start = cluster.env.now
        for event in scenario.sorted_events():
            wait = start + event.at_ms - cluster.env.now
            if wait > 0:
                yield cluster.env.timeout(wait)
            if event.action == "crash":
                snapshots[event.target] = _node_snapshot(
                    node_map()[event.target])
                if protocol in GRYFF_PROTOCOLS:
                    cluster.crash_replica(event.target)
                else:
                    cluster.crash_shard(event.target)
                controller.isolate(event.target)
            elif event.action == "restart":
                if protocol in GRYFF_PROTOCOLS:
                    node = cluster.restart_replica(event.target)
                else:
                    node = cluster.restart_shard(event.target)
                controller.restore(event.target)
                report.recoveries.append(_compare_recovery(
                    event.target, snapshots.pop(event.target, {}), node))
            elif event.action == "skew":
                from repro.sim.clock import TrueTime

                shard = cluster.shards[event.target]
                skewed = TrueTime(cluster.env,
                                  epsilon=cluster.truetime.epsilon)
                skewed.offset_ms = event.args.get("offset_ms", 0.0)
                shard.truetime = skewed
            elif event.action == "epsilon":
                cluster.truetime.epsilon = event.args["epsilon_ms"]
                for shard in cluster.shards.values():
                    shard.truetime.epsilon = event.args["epsilon_ms"]
            else:
                _apply_rule_event(controller, event, session_names)

    cluster.env.process(nemesis())
    driver.start()
    cluster.env.run()
    writer.close()

    report.abandoned = abandoned[0]
    report.fault_counters = controller.counters()
    if leases:
        report.lease_transitions = {
            name: list(lease.transitions) for name, lease in leases.items()
            if lease.transitions}
    history = (cluster.kv_history() if hasattr(cluster, "kv_history")
               else cluster.history)
    augmented = _augmented_history(
        protocol, history,
        node_map().values(), invoked_at=_first_window_start(scenario))
    report.reconstructed = len(augmented) - len(history)
    _check_and_judge(report, scenario, augmented, run_start=0.0)
    return report


# --------------------------------------------------------------------------- #
# Live backend
# --------------------------------------------------------------------------- #
async def _run_live_async(scenario: Scenario, trace_dir: str,
                          metrics: Optional[Any] = None) -> ChaosReport:
    from repro.net.cluster import LiveProcess
    from repro.net.spec import ClusterSpec

    protocol = scenario.protocol
    model = negotiate(protocol, scenario.level).checker_model
    report = ChaosReport(scenario=scenario.name, backend="live",
                         protocol=protocol, model=model,
                         expect_clean=scenario.expect_clean)
    wal_dir = os.path.join(trace_dir, "wal")
    os.makedirs(wal_dir, exist_ok=True)

    if protocol in GRYFF_PROTOCOLS:
        spec = ClusterSpec.gryff(num_replicas=scenario.num_servers,
                                 variant=protocol,
                                 params={"seed": scenario.seed})
    else:
        spec = ClusterSpec.spanner(num_shards=scenario.num_servers,
                                   variant=protocol,
                                   params={"seed": scenario.seed})
    for node in spec.nodes.values():
        node.port = 0   # ephemeral; propagated into the shared spec on bind

    controller = FaultController(seed=scenario.seed)
    leases: Dict[str, Any] = {}
    if protocol in SPANNER_PROTOCOLS:
        from repro.spanner.replication import LeaderLease

        leases = {name: LeaderLease(scenario.lease_ms)
                  for name in spec.server_names()}

    procs: Dict[str, LiveProcess] = {}
    for name in spec.server_names():
        proc = LiveProcess(spec, host_nodes=[name], wal_dir=wal_dir,
                           leases=leases, faults=controller)
        await proc.start()
        procs[name] = proc

    trace_path = os.path.join(trace_dir, "trace.jsonl")
    writer = _trace_writer(trace_path, scenario, "live", model)
    history = RecordingHistory(writer)
    report.trace_path = trace_path
    store = open_store(spec, history=history, recorder=LatencyRecorder())
    store.process.transport.faults = controller
    if metrics is not None:
        from repro.obs.instrument import (
            instrument_fault_controller,
            instrument_process,
            instrument_transport,
        )

        instrument_fault_controller(metrics, controller)
        # Getters read through the procs table so the fresh LiveProcess a
        # restart installs is followed at the next scrape.
        for node_name in list(procs):
            instrument_process(metrics,
                               (lambda n: lambda: procs[n])(node_name),
                               label=node_name)
        instrument_transport(metrics, store.process.transport,
                             node="clients")
    sessions = _build_sessions(store, scenario, spec.sites())
    session_names = [session.name for session in sessions]
    abandoned = [0]
    driver = ClosedLoopDriver(
        store.env, _build_pairs(sessions, scenario),
        executor=_timeout_executor(store.env, scenario.op_timeout_ms,
                                   abandoned),
        duration_ms=scenario.duration_ms,
        think_time_ms=scenario.think_time_ms)

    snapshots: Dict[str, Dict[str, Any]] = {}

    async def nemesis(run_start: float):
        loop_start = asyncio.get_running_loop().time()
        for event in scenario.sorted_events():
            wait = event.at_ms / 1000.0 - (
                asyncio.get_running_loop().time() - loop_start)
            if wait > 0:
                await asyncio.sleep(wait)
            if event.action == "crash":
                proc = procs[event.target]
                snapshots[event.target] = _node_snapshot(
                    proc.nodes[event.target])
                proc.close_wals()
                await proc.stop()
                controller.isolate(event.target)
            elif event.action == "restart":
                proc = LiveProcess(spec, host_nodes=[event.target],
                                   wal_dir=wal_dir, leases=leases,
                                   faults=controller)
                await proc.start()
                procs[event.target] = proc
                controller.restore(event.target)
                report.recoveries.append(_compare_recovery(
                    event.target, snapshots.pop(event.target, {}),
                    proc.nodes[event.target]))
            elif event.action == "skew":
                procs[event.target].truetime.offset_ms = (
                    event.args.get("offset_ms", 0.0))
            elif event.action == "epsilon":
                for proc in procs.values():
                    if proc.truetime is not None:
                        proc.truetime.epsilon = event.args["epsilon_ms"]
                if store._truetime is not None:
                    store._truetime.epsilon = event.args["epsilon_ms"]
            else:
                _apply_rule_event(controller, event, session_names)

    await store.start()
    run_start = store.env.now
    nemesis_task = asyncio.ensure_future(nemesis(run_start))
    try:
        await store.drive(driver)
        await nemesis_task
    finally:
        nemesis_task.cancel()
        await store.stop()
        for proc in procs.values():
            await proc.stop()
        writer.close()

    report.abandoned = abandoned[0]
    report.fault_counters = controller.counters()
    if leases:
        report.lease_transitions = {
            name: list(lease.transitions) for name, lease in leases.items()
            if lease.transitions}
    nodes = [proc.nodes[name] for name, proc in procs.items()
             if name in proc.nodes]
    augmented = _augmented_history(
        protocol, history, nodes,
        invoked_at=run_start + _first_window_start(scenario))
    report.reconstructed = len(augmented) - len(history)
    _check_and_judge(report, scenario, augmented, run_start=run_start)
    return report


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def run_scenario(scenario: Scenario, backend: str = "sim",
                 trace_dir: Optional[str] = None,
                 metrics: Optional[Any] = None) -> ChaosReport:
    """Run ``scenario`` on ``backend`` (``"sim"`` or ``"live"``).

    ``trace_dir`` holds the JSONL trace and the per-node WALs (a fresh
    temporary directory when ``None``).  ``metrics`` — a
    :class:`~repro.obs.MetricsRegistry` — instruments the fault controller
    and every node for the run (``None`` attaches nothing and leaves every
    code path byte-identical).  Returns a :class:`ChaosReport`;
    ``report.ok`` is the scenario's verdict.
    """
    if scenario.protocol in GRYFF_PROTOCOLS and any(
            e.action in ("skew", "epsilon") for e in scenario.events):
        raise ValueError("skew/epsilon faults need a TrueTime backend "
                         "(Spanner protocols)")
    if trace_dir is None:
        trace_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    if backend == "sim":
        return _run_sim(scenario, trace_dir, metrics=metrics)
    if backend == "live":
        return asyncio.run(_run_live_async(scenario, trace_dir,
                                           metrics=metrics))
    raise ValueError(f"unknown backend {backend!r} (sim or live)")
