"""Chaos engineering for the reproduction: fault injection with
checker-verified guarantees.

* :mod:`repro.chaos.faults` — the :class:`FaultController` nemesis
  interface both transports honor (drop / partition / delay / reorder).
* :mod:`repro.chaos.scenario` — declarative fault timelines
  (:class:`Scenario`, :class:`FaultEvent`) and their fault windows.
* :mod:`repro.chaos.scenarios` — the named catalog
  (``python -m repro chaos --list``).
* :mod:`repro.chaos.engine` — :func:`run_scenario`: the same scenario
  against the simulated or the live cluster, with WAL-backed crash
  recovery, leader failover, and streaming-checker verdicts.
* :mod:`repro.chaos.reshard` — :func:`run_reshard_crash`: kill the
  fleet's migration controller mid-copy and recover from its journal.
"""

from repro.chaos.faults import Fate, FaultController
from repro.chaos.scenario import FaultEvent, Scenario
from repro.chaos.scenarios import all_scenarios, get_scenario, scenario_names
from repro.chaos.engine import ChaosReport, NodeRecovery, run_scenario
from repro.chaos.reshard import ReshardReport, run_reshard_crash

__all__ = [
    "Fate",
    "FaultController",
    "FaultEvent",
    "Scenario",
    "ChaosReport",
    "NodeRecovery",
    "ReshardReport",
    "run_scenario",
    "run_reshard_crash",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
]
