"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures.  The
simulated experiment sizes are controlled by the ``REPRO_BENCH_SCALE``
environment variable:

* ``quick`` — small runs suitable for CI smoke tests (default);
* ``full``  — larger runs with smoother tails (a few minutes total).
"""

import os

import pytest


SCALES = {
    "quick": {
        "spanner_duration_ms": 20_000.0,
        "spanner_clients_per_site": 6,
        "gryff_duration_ms": 20_000.0,
        "load_duration_ms": 1_000.0,
        "load_client_counts": (4, 16, 48),
        "write_ratios": (0.1, 0.3, 0.5, 0.7, 0.9),
    },
    "full": {
        "spanner_duration_ms": 60_000.0,
        "spanner_clients_per_site": 8,
        "gryff_duration_ms": 60_000.0,
        "load_duration_ms": 5_000.0,
        "load_client_counts": (4, 8, 16, 32, 64, 96),
        "write_ratios": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    },
}


@pytest.fixture(scope="session")
def bench_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"unknown REPRO_BENCH_SCALE {name!r}; use quick or full")
    return SCALES[name]
