"""Ablation — Gryff-RSC dependency handling.

Compares the cost of Gryff-RSC's piggybacked dependency propagation against
an eager variant that issues a real-time fence (an explicit quorum
write-back) immediately after every read that observed a non-quorum value.
The eager variant models what applications would pay without piggybacking
(§7.1's discussion of real-time fences).
"""

from repro.api import open_store
from repro.bench.gryff_experiments import run_ycsb_experiment
from repro.bench.reporting import format_table
from repro.gryff.config import GryffConfig, GryffVariant
from repro.sim.stats import percentile
from repro.workloads.clients import ClosedLoopDriver
from repro.workloads.ycsb import YcsbWorkload


def eager_fence_executor(session, spec):
    if spec.kind == "write":
        yield from session.write(spec.key, spec.value)
    else:
        yield from session.read(spec.key)
        if session.dependency is not None:
            yield from session.fence()


def run_eager_fence_experiment(write_ratio, conflict_rate, duration_ms, seed=4):
    config = GryffConfig(variant=GryffVariant.GRYFF_RSC, seed=seed)
    store = open_store("sim-gryff", config=config)
    pairs = []
    for index in range(16):
        site = config.sites[index % len(config.sites)]
        session = store.session(site, record_history=False)
        pairs.append((session, YcsbWorkload(
            client_id=session.name, write_ratio=write_ratio,
            conflict_rate=conflict_rate, seed=seed * 1000 + index)))
    ClosedLoopDriver(store.env, pairs, eager_fence_executor,
                     duration_ms=duration_ms).start()
    store.run()
    return store


def run_ablation(duration_ms):
    write_ratio, conflict_rate = 0.3, 0.10
    piggyback = run_ycsb_experiment(GryffVariant.GRYFF_RSC, write_ratio,
                                    conflict_rate, duration_ms=duration_ms, seed=4)
    eager = run_eager_fence_experiment(write_ratio, conflict_rate, duration_ms)
    gryff = run_ycsb_experiment(GryffVariant.GRYFF, write_ratio, conflict_rate,
                                duration_ms=duration_ms, seed=4)

    def row(label, recorder, throughput):
        reads = recorder.samples("read")
        fences = recorder.samples("fence")
        return [label, len(reads),
                percentile(reads, 99) if reads else 0.0,
                throughput, len(fences)]

    return [
        row("Gryff (write-back reads)", gryff.recorder, gryff.throughput()),
        row("Gryff-RSC (piggybacked deps)", piggyback.recorder, piggyback.throughput()),
        row("Gryff-RSC (eager fences)", eager.recorder, eager.recorder.throughput()),
    ]


def test_ablation_gryff_dependency_handling(benchmark, bench_scale):
    rows = benchmark.pedantic(run_ablation, args=(bench_scale["gryff_duration_ms"],),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", "reads", "p99 read (ms)", "throughput (op/s)", "fences"],
        rows, title="Ablation — Gryff-RSC dependency propagation (YCSB 0.3/10%)",
    ))
    by_label = {row[0]: row for row in rows}
    piggy = by_label["Gryff-RSC (piggybacked deps)"]
    eager = by_label["Gryff-RSC (eager fences)"]
    gryff = by_label["Gryff (write-back reads)"]
    # Piggybacking keeps p99 read latency at or below both alternatives.
    assert piggy[2] <= gryff[2] * 1.05
    assert piggy[2] <= eager[2] * 1.05
    # The eager variant actually pays for fences.
    assert eager[4] >= 0
