"""Figure 7 — Gryff vs Gryff-RSC p99 read latency across write ratios at
2%, 10%, and 25% conflict rates (YCSB, five wide-area replicas)."""

import pytest

from repro.bench.gryff_experiments import figure7_experiment
from repro.bench.reporting import format_table


@pytest.mark.parametrize("conflict_rate", [0.02, 0.10, 0.25])
def test_figure7_p99_read_latency(benchmark, bench_scale, conflict_rate):
    rows = benchmark.pedantic(
        figure7_experiment,
        args=(conflict_rate,),
        kwargs={
            "write_ratios": bench_scale["write_ratios"],
            "duration_ms": bench_scale["gryff_duration_ms"],
            "seed": 4,
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["write ratio", "Gryff p99 (ms)", "Gryff-RSC p99 (ms)", "reduction (%)",
         "Gryff slow-read fraction"],
        [[row["write_ratio"], row["gryff_p99_ms"], row["gryff_rsc_p99_ms"],
          row["reduction_pct"], row["gryff_slow_read_fraction"]] for row in rows],
        title=f"Figure 7 — YCSB, {conflict_rate * 100:g}% conflicts",
    ))

    for row in rows:
        # Gryff-RSC reads are always one round: p99 stays at roughly one
        # wide-area quorum RTT (~145 ms) and never exceeds Gryff's.
        assert row["gryff_rsc_p99_ms"] <= row["gryff_p99_ms"] * 1.05
        assert row["gryff_rsc_p99_ms"] < 170.0
    if conflict_rate >= 0.10:
        # At moderate/high conflict rates some write ratio shows the paper's
        # roughly 40% p99 reduction (two rounds -> one round).
        assert max(row["reduction_pct"] for row in rows) > 25.0
    else:
        # With 2% conflicts nearly all Gryff reads already take one round, so
        # there is little to improve.
        assert all(row["gryff_p99_ms"] < 170.0 for row in rows)
