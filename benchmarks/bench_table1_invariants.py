"""Table 1 — which invariants hold and which anomalies are possible under
strict serializability, RSS, and PO serializability."""

from repro.bench.table1 import PAPER_TABLE1, TABLE1_MODELS, table1_report


def test_table1_invariants_and_anomalies(benchmark):
    report = benchmark(table1_report)
    print()
    print(report["text"])
    for model in TABLE1_MODELS:
        assert report["computed"][model] == PAPER_TABLE1[model], (
            f"Table 1 row for {model} does not match the paper: "
            f"{report['computed'][model]} vs {PAPER_TABLE1[model]}"
        )
