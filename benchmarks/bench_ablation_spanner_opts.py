"""Ablation — the two Spanner-RSS implementation optimizations of §6:

1. returning a skipped prepared transaction's buffered writes in the fast
   path (instead of only in the slow path);
2. advancing a read-write transaction's earliest end time t_ee by the time it
   spent blocked in wound-wait.

The ablation runs the Retwis workload at skew 0.7 with each optimization
disabled and compares read-only tail latency against the full protocol.
"""

from repro.bench.reporting import format_table
from repro.bench.spanner_experiments import run_retwis_experiment
from repro.sim.stats import percentile
from repro.spanner.config import Variant


def run_ablation(duration_ms, clients_per_site):
    variants = {
        "full": {},
        "no fast-path prepared writes": {"fast_path_prepared_writes": False},
        "no t_ee blocking adjustment": {"adjust_tee_for_blocking": False},
    }
    rows = []
    for label, overrides in variants.items():
        result = run_retwis_experiment(
            Variant.SPANNER_RSS, zipf_skew=0.7,
            duration_ms=duration_ms, clients_per_site=clients_per_site,
            session_arrival_rate_per_sec=2.0, num_keys=2_000, seed=3,
            config_overrides=overrides,
        )
        samples = result.recorder.samples("ro")
        rows.append({
            "label": label,
            "ro_count": len(samples),
            "p50": percentile(samples, 50) if samples else 0.0,
            "p99": percentile(samples, 99) if samples else 0.0,
            "p999": percentile(samples, 99.9) if samples else 0.0,
            "blocked_fraction": result.blocked_fraction(),
        })
    return rows


def test_ablation_spanner_rss_optimizations(benchmark, bench_scale):
    rows = benchmark.pedantic(
        run_ablation,
        args=(bench_scale["spanner_duration_ms"],
              bench_scale["spanner_clients_per_site"]),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["configuration", "RO count", "p50 (ms)", "p99 (ms)", "p99.9 (ms)",
         "blocked fraction"],
        [[row["label"], row["ro_count"], row["p50"], row["p99"], row["p999"],
          row["blocked_fraction"]] for row in rows],
        title="Ablation — Spanner-RSS optimizations (Retwis, skew 0.7)",
    ))
    # Every configuration still provides the headline benefit: the protocol
    # remains functional and the median is one wide-area round trip.
    for row in rows:
        assert row["ro_count"] > 50
        assert row["p50"] < 200.0
