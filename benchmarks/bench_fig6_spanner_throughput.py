"""Figure 6 — Spanner-RSS does not significantly impact throughput or median
latency at high load (single data center, eight shards, zero TrueTime error)."""

from repro.bench.reporting import format_table
from repro.bench.spanner_experiments import figure6_experiment


def test_figure6_throughput_vs_latency(benchmark, bench_scale):
    rows = benchmark.pedantic(
        figure6_experiment,
        kwargs={
            "client_counts": bench_scale["load_client_counts"],
            "duration_ms": bench_scale["load_duration_ms"],
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["clients", "Spanner tput (txn/s)", "Spanner p50 (ms)",
         "Spanner-RSS tput (txn/s)", "Spanner-RSS p50 (ms)"],
        [[row["clients"], row["spanner_throughput"], row["spanner_overall_p50_ms"],
          row["spanner_rss_throughput"], row["spanner_rss_overall_p50_ms"]]
         for row in rows],
        title="Figure 6 — throughput vs median latency under high load",
    ))
    # Spanner-RSS's throughput stays within a modest factor of Spanner's and
    # its median latency is within a few milliseconds (the paper reports
    # "within a few hundred transactions per second" and "within a few ms").
    for row in rows:
        assert row["spanner_rss_throughput"] >= row["spanner_throughput"] * 0.8
        assert abs(row["spanner_rss_overall_p50_ms"] - row["spanner_overall_p50_ms"]) < 10.0
    # Throughput grows with offered load before saturating.
    assert rows[-1]["spanner_throughput"] > rows[0]["spanner_throughput"]
