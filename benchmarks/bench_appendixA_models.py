"""Appendix A (Figures 9-16) — the example executions that separate RSS/RSC
from their proximal consistency models."""

from repro.bench.appendix_a import appendix_a_report


def test_appendix_a_model_comparison(benchmark):
    report = benchmark(appendix_a_report)
    print()
    print(report["text"])
    assert report["mismatches"] == [], (
        f"checker verdicts disagree with the paper for: {report['mismatches']}"
    )
