"""Figure 5 — Spanner vs Spanner-RSS read-only transaction tail latency on
Retwis at Zipf skews 0.5, 0.7, and 0.9."""

import pytest

from repro.bench.reporting import format_table
from repro.bench.spanner_experiments import figure5_experiment


def run_figure5(skew, scale):
    return figure5_experiment(
        skew,
        duration_ms=scale["spanner_duration_ms"],
        clients_per_site=scale["spanner_clients_per_site"],
        session_arrival_rate_per_sec=2.0,
        num_keys=2_000,
        seed=3,
    )


@pytest.mark.parametrize("skew", [0.5, 0.7, 0.9])
def test_figure5_ro_tail_latency(benchmark, bench_scale, skew):
    outcome = benchmark.pedantic(run_figure5, args=(skew, bench_scale),
                                 rounds=1, iterations=1)
    rows = [
        [f"p{row['fraction'] * 100:g}", row["spanner_ms"], row["spanner_rss_ms"],
         row["reduction_pct"]]
        for row in outcome["rows"]
    ]
    print()
    print(format_table(
        ["RO latency percentile", "Spanner (ms)", "Spanner-RSS (ms)", "reduction (%)"],
        rows, title=f"Figure 5 — Retwis, Zipf skew {skew}",
    ))
    spanner = outcome["results"]["spanner"]
    rss = outcome["results"]["spanner_rss"]
    print(f"Spanner   : committed={spanner['committed']} blocked RO fraction="
          f"{spanner['blocked_fraction']:.3f}")
    print(f"SpannerRSS: committed={rss['committed']} blocked RO fraction="
          f"{rss['blocked_fraction']:.3f}")

    # The paper's qualitative claims: the median is unaffected, the tail
    # (p99 and beyond) improves, and Spanner-RSS blocks less often.
    by_fraction = {row["fraction"]: row for row in outcome["rows"]}
    assert by_fraction[0.5]["spanner_rss_ms"] == pytest.approx(
        by_fraction[0.5]["spanner_ms"], rel=0.6)
    assert by_fraction[0.99]["spanner_rss_ms"] <= by_fraction[0.99]["spanner_ms"] * 1.02
    assert by_fraction[0.999]["spanner_rss_ms"] <= by_fraction[0.999]["spanner_ms"] * 1.02
    assert rss["blocked_fraction"] <= spanner["blocked_fraction"] + 0.01
    if skew >= 0.7:
        # At moderate/high contention the p99 improvement is substantial.
        assert by_fraction[0.99]["reduction_pct"] > 10.0
