"""§7.4 — Gryff-RSC's piggybacking mechanism imposes negligible overhead:
with no wide-area emulation, throughput and median latency are within a few
percent of Gryff's for 50/50 and 95/5 read/write mixes at 10% conflicts."""

from repro.bench.gryff_experiments import overhead_experiment
from repro.bench.reporting import format_table


def test_gryff_rsc_overhead(benchmark, bench_scale):
    rows = benchmark.pedantic(
        overhead_experiment,
        kwargs={"duration_ms": bench_scale["load_duration_ms"]},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["write ratio", "Gryff tput (op/s)", "Gryff p50 (ms)",
         "Gryff-RSC tput (op/s)", "Gryff-RSC p50 (ms)", "tput delta (%)"],
        [[row["write_ratio"], row["gryff_throughput"], row["gryff_p50_ms"],
          row["gryff_rsc_throughput"], row["gryff_rsc_p50_ms"],
          row["throughput_delta_pct"]] for row in rows],
        title="§7.4 — Gryff-RSC overhead (single data center, 10% conflicts)",
    ))
    for row in rows:
        assert abs(row["throughput_delta_pct"]) < 10.0
        assert abs(row["gryff_rsc_p50_ms"] - row["gryff_p50_ms"]) < 2.0
