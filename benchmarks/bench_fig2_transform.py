"""Figure 2 — transforming an RSS execution into an equivalent strictly
serializable (linearizable) execution (Lemma 1)."""

from repro.core.examples import figure_2, figure_10
from repro.core.transform import (
    equivalent_per_process,
    transform_to_strict,
    verify_transformation,
)
from repro.core.checkers import check_linearizability, check_strict_serializability
from repro.bench.reporting import format_table


def run_transformations():
    results = []
    for example, checker in ((figure_2(), check_linearizability),
                             (figure_10(), check_strict_serializability)):
        transformed = transform_to_strict(example.history, spec=example.spec)
        results.append({
            "example": example.name,
            "original_strict": bool(checker(example.history, example.spec)),
            "transformed_strict": bool(checker(transformed, example.spec)),
            "equivalent": equivalent_per_process(example.history, transformed),
            "verified": bool(verify_transformation(example.history, transformed,
                                                   example.spec)),
        })
    return results


def test_figure2_transformation(benchmark):
    results = benchmark(run_transformations)
    print()
    print(format_table(
        ["execution", "original strictly ser.", "transformed strictly ser.",
         "per-process equivalent"],
        [[r["example"], r["original_strict"], r["transformed_strict"],
          r["equivalent"]] for r in results],
        title="Figure 2 — RSS-to-strict transformation",
    ))
    for row in results:
        assert not row["original_strict"]
        assert row["transformed_strict"]
        assert row["equivalent"]
        assert row["verified"]
