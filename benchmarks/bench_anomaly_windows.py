"""Extension experiment — how large are the anomaly windows RSS allows?

§3 argues the anomalies RSS admits beyond strict serializability are only
possible within short time windows (essentially while the conflicting write
is still in flight).  This bench runs a contended Retwis workload against
Spanner-RSS with history recording enabled and measures:

* the number of read-only transactions that missed a *completed* conflicting
  write (anomaly A2), which must be zero;
* for reads that missed an *in-flight* conflicting write (the A3
  "temporarily" case), how long that write remained in flight after the read
  returned — the only interval during which the anomaly can be observed.
"""

from repro.bench.anomalies import (
    spanner_completed_write_misses,
    spanner_in_flight_miss_windows,
)
from repro.bench.reporting import format_table
from repro.bench.spanner_experiments import run_retwis_experiment
from repro.spanner.config import Variant


def run_anomaly_measurement(duration_ms):
    return run_retwis_experiment(
        Variant.SPANNER_RSS, zipf_skew=0.9, duration_ms=duration_ms,
        clients_per_site=3, session_arrival_rate_per_sec=2.0,
        num_keys=500, seed=6, record_history=True, check_consistency=True,
    )


def test_anomaly_windows_are_bounded(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_anomaly_measurement,
        args=(min(bench_scale["spanner_duration_ms"], 10_000.0),),
        rounds=1, iterations=1,
    )
    history = result.history
    report = spanner_in_flight_miss_windows(history)
    completed_misses = spanner_completed_write_misses(history)
    rows = report.summary_rows() + [
        ["completed conflicting writes missed (A2)", completed_misses],
        ["max RW transaction latency (ms)",
         result.rw_percentiles().maximum if result.recorder.samples("rw") else 0.0],
    ]
    print()
    print(format_table(["metric", "value"], rows,
                       title="Anomaly windows under Spanner-RSS (extension)"))
    assert result.consistency_ok is True
    # A2 never happens: completed writes are always visible.
    assert completed_misses == 0
    # A3-style anomalies are confined to the lifetime of the in-flight write:
    # the window never exceeds the longest read-write transaction.
    if report.misses:
        assert report.max_window_ms <= result.rw_percentiles().maximum + 1.0
    assert report.max_window_ms < 2_000.0
