"""Perf-scaling benchmark: checker edge derivation and sim kernel throughput.

Runs the performance suite from :mod:`repro.bench.perfsuite` at the
``REPRO_BENCH_SCALE`` scale and writes ``BENCH_perf.json`` at the repository
root (baseline comparison included when the committed seed baseline is
present).  The assertions are intentionally loose lower bounds — an order of
magnitude below typical measurements — so CI catches genuine regressions
without flaking on machine noise.
"""

import os

import pytest

from repro.bench.perfsuite import attach_baseline, perf_report_rows, run_perf_suite
from repro.bench.reporting import format_table, write_json_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def perf_payload():
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    payload = attach_baseline(run_perf_suite(scale))
    write_json_report(os.path.join(REPO_ROOT, "BENCH_perf.json"), payload)
    return payload


def test_perf_suite_writes_report(perf_payload):
    print()
    print(format_table(["metric", "value"], perf_report_rows(perf_payload),
                       title=f"Performance suite — scale {perf_payload['scale']}"))
    assert os.path.exists(os.path.join(REPO_ROOT, "BENCH_perf.json"))


def test_constraint_derivation_speedup(perf_payload):
    """The sweep-line engine must beat the naive quadratic loops clearly."""
    for row in perf_payload["constraints"]:
        if row["ops"] >= 1000:
            assert row["real_time_speedup"] > 5.0, row
            assert row["regular_speedup"] > 5.0, row


def test_sim_kernel_throughput_floor(perf_payload):
    """Loose absolute floor: the slotted kernel measures ~1M events/s."""
    assert perf_payload["sim"]["events_per_s"] > 100_000


def test_streaming_checker_bounded_memory(perf_payload):
    """Epoch-windowed checking must hold peak memory bounded per epoch.

    The streaming checker sees the same operations as the batch checker but
    retains only the current epoch plus the carried frontier state, so its
    peak traced heap must come in clearly below batch at 10k+ ops, and the
    largest epoch must be a small fraction of the history.  Throughput is
    machine-dependent and only floor-checked.
    """
    rows = perf_payload["streaming"]
    assert rows, "streaming section missing from the perf payload"
    for row in rows:
        assert row["epochs"] > 1, row
        assert row["max_segment_ops"] < row["ops"] / 2, row
        assert row["stream_peak_mb"] < row["batch_peak_mb"], row
        assert row["stream_ops_per_s"] > 1_000, row


def test_sweep_wall_clock_recorded_and_deterministic(perf_payload):
    """The serial-vs-parallel sweep section must show matching results.

    Wall-clock speedup depends on the core count of the machine, so only
    the determinism claim (parallel payloads == serial payloads) is
    asserted unconditionally; the >1x speedup assertion is opt-in via
    REPRO_PERF_STRICT=1 on machines with multiple cores.
    """
    sweep = perf_payload["sweep_wall_clock"]
    assert sweep["trials"] > 0
    assert sweep["serial_wall_s"] > 0
    assert sweep["results_match"] is True
    if (os.environ.get("REPRO_PERF_STRICT") == "1"
            and (sweep["cpu_count"] or 1) > 1 and sweep["jobs"] > 1):
        assert sweep["speedup"] > 1.0


def test_metrics_overhead_within_bounds(perf_payload):
    """Attaching the metrics registry must not tank live throughput.

    The instrumentation is scrape-time collectors plus a handful of integer
    increments on the transport hot path, so the on/off throughput ratio
    sits near 1.0.  The live loop is I/O-bound and CI machines are noisy,
    so the unconditional bound is loose (>= 0.75); the paper-claim bound of
    "within 5%" (>= 0.95) is opt-in via REPRO_PERF_STRICT=1 on quiet hosts.
    """
    metrics = perf_payload["metrics_overhead"]
    assert metrics["ops"] > 0
    assert metrics["registry_off_ops_per_s"] > 0
    assert metrics["registry_on_ops_per_s"] > 0
    assert metrics["throughput_ratio"] >= 0.75, metrics
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert metrics["throughput_ratio"] >= 0.95, metrics


def test_wire_codec_size_and_throughput(perf_payload):
    """The binary v2 codec must beat JSON v1 decisively on wire size.

    Size is machine-independent: the sample traffic shrinks by at least 2x
    (measured ~3x).  Encode/decode throughputs are machine-dependent and
    only floor-checked loosely; ``json`` decode rides the C-accelerated
    ``json.loads``, so the binary decoder (pure Python) is not required to
    beat it — the wire wins come from the 3x fewer bytes and the batch
    frames (one syscall per batch).  REPRO_PERF_STRICT=1 additionally
    requires binary encode to beat JSON encode (true on quiet hosts).
    """
    wire = perf_payload["wire_codec"]
    assert wire["size_ratio_json_over_binary"] > 2.0, wire
    assert wire["binary"]["bytes_per_op"] < wire["json"]["bytes_per_op"]
    for codec in ("json", "binary"):
        assert wire[codec]["encode_ops_per_s"] > 5_000, wire
        assert wire[codec]["decode_ops_per_s"] > 5_000, wire
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert (wire["binary"]["encode_ops_per_s"]
                > wire["json"]["encode_ops_per_s"]), wire


def test_live_open_loop_meets_the_requested_rate(perf_payload):
    """The open-loop leg must achieve most of its requested arrival rate.

    The quick-scale rate is set well inside the measured 1-core capacity,
    so falling below 80% of it means a genuine regression in the wire or
    the driver, not machine noise; both codecs must also finish with no
    abandoned arrivals.
    """
    live = perf_payload["live"]
    assert set(live["codecs"]) == {"binary", "json"}
    for codec, row in live["codecs"].items():
        assert row["ops"] > 0, (codec, row)
        assert row["abandoned"] == 0, (codec, row)
        assert row["achieved_rate_per_s"] >= 0.8 * live["rate_per_s"], \
            (codec, row)
        assert row["response_ms"], (codec, row)


def test_fleet_routing_overhead_within_bounds(perf_payload):
    """The fleet layer must stay cheap: fast ring, near-zero routing tax.

    Ring lookups are pure CPU (blake2b + binary search) and must clear an
    absolute floor on any machine.  The single-group FleetStore adds one
    ring lookup and a counter bump per op with zero extra wire traffic, so
    its p99 against a plain LiveStore on the identical workload sits near
    1.0 — the unconditional bound is loose because both sides are live
    I/O-bound loops on shared CI hosts; REPRO_PERF_STRICT=1 tightens it.
    Every planned online split must have completed with a bounded write
    pause (the fence→flip window measures single-digit ms).
    """
    fleet = perf_payload["fleet"]
    assert fleet["ring"]["lookups_per_s"] > 50_000, fleet["ring"]

    routing = fleet["routing"]
    assert routing["ops"] > 0
    assert routing["p99_overhead_ratio"] <= 2.5, routing
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert routing["p99_overhead_ratio"] <= 1.5, routing

    migration = fleet["migration"]
    assert migration["completed"] == migration["planned"], migration
    assert migration["crashed"] is False, migration
    assert migration["placement_epoch"] == 1 + migration["completed"]
    assert migration["ops_under_load"] > 0
    assert migration["pause_ms"]["max"] < 1_000.0, migration


def test_speedup_vs_seed_baseline(perf_payload):
    """The baseline comparison must be present and well-formed.

    The seed baseline was measured on a particular machine, so asserting an
    absolute cross-machine speedup would fail on any slower runner; the
    numeric >1x assertion is opt-in via REPRO_PERF_STRICT=1 (useful when
    benchmarking on the same host that produced the baseline).
    """
    speedups = perf_payload.get("speedups_vs_seed")
    if not speedups:
        pytest.skip("seed baseline not available")
    assert speedups["sim_events_per_s"] > 0
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert speedups["sim_events_per_s"] > 1.0
