"""Perf-scaling benchmark: checker edge derivation and sim kernel throughput.

Runs the performance suite from :mod:`repro.bench.perfsuite` at the
``REPRO_BENCH_SCALE`` scale and writes ``BENCH_perf.json`` at the repository
root (baseline comparison included when the committed seed baseline is
present).  The assertions are intentionally loose lower bounds — an order of
magnitude below typical measurements — so CI catches genuine regressions
without flaking on machine noise.
"""

import os

import pytest

from repro.bench.perfsuite import attach_baseline, perf_report_rows, run_perf_suite
from repro.bench.reporting import format_table, write_json_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def perf_payload():
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    payload = attach_baseline(run_perf_suite(scale))
    write_json_report(os.path.join(REPO_ROOT, "BENCH_perf.json"), payload)
    return payload


def test_perf_suite_writes_report(perf_payload):
    print()
    print(format_table(["metric", "value"], perf_report_rows(perf_payload),
                       title=f"Performance suite — scale {perf_payload['scale']}"))
    assert os.path.exists(os.path.join(REPO_ROOT, "BENCH_perf.json"))


def test_constraint_derivation_speedup(perf_payload):
    """The sweep-line engine must beat the naive quadratic loops clearly."""
    for row in perf_payload["constraints"]:
        if row["ops"] >= 1000:
            assert row["real_time_speedup"] > 5.0, row
            assert row["regular_speedup"] > 5.0, row


def test_sim_kernel_throughput_floor(perf_payload):
    """Loose absolute floor: the slotted kernel measures ~1M events/s."""
    assert perf_payload["sim"]["events_per_s"] > 100_000


def test_streaming_checker_bounded_memory(perf_payload):
    """Epoch-windowed checking must hold peak memory bounded per epoch.

    The streaming checker sees the same operations as the batch checker but
    retains only the current epoch plus the carried frontier state, so its
    peak traced heap must come in clearly below batch at 10k+ ops, and the
    largest epoch must be a small fraction of the history.  Throughput is
    machine-dependent and only floor-checked.
    """
    rows = perf_payload["streaming"]
    assert rows, "streaming section missing from the perf payload"
    for row in rows:
        assert row["epochs"] > 1, row
        assert row["max_segment_ops"] < row["ops"] / 2, row
        assert row["stream_peak_mb"] < row["batch_peak_mb"], row
        assert row["stream_ops_per_s"] > 1_000, row


def test_sweep_wall_clock_recorded_and_deterministic(perf_payload):
    """The serial-vs-parallel sweep section must show matching results.

    Wall-clock speedup depends on the core count of the machine, so only
    the determinism claim (parallel payloads == serial payloads) is
    asserted unconditionally; the >1x speedup assertion is opt-in via
    REPRO_PERF_STRICT=1 on machines with multiple cores.
    """
    sweep = perf_payload["sweep_wall_clock"]
    assert sweep["trials"] > 0
    assert sweep["serial_wall_s"] > 0
    assert sweep["results_match"] is True
    if (os.environ.get("REPRO_PERF_STRICT") == "1"
            and (sweep["cpu_count"] or 1) > 1 and sweep["jobs"] > 1):
        assert sweep["speedup"] > 1.0


def test_metrics_overhead_within_bounds(perf_payload):
    """Attaching the metrics registry must not tank live throughput.

    The instrumentation is scrape-time collectors plus a handful of integer
    increments on the transport hot path, so the on/off throughput ratio
    sits near 1.0.  The live loop is I/O-bound and CI machines are noisy,
    so the unconditional bound is loose (>= 0.75); the paper-claim bound of
    "within 5%" (>= 0.95) is opt-in via REPRO_PERF_STRICT=1 on quiet hosts.
    """
    metrics = perf_payload["metrics_overhead"]
    assert metrics["ops"] > 0
    assert metrics["registry_off_ops_per_s"] > 0
    assert metrics["registry_on_ops_per_s"] > 0
    assert metrics["throughput_ratio"] >= 0.75, metrics
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert metrics["throughput_ratio"] >= 0.95, metrics


def test_speedup_vs_seed_baseline(perf_payload):
    """The baseline comparison must be present and well-formed.

    The seed baseline was measured on a particular machine, so asserting an
    absolute cross-machine speedup would fail on any slower runner; the
    numeric >1x assertion is opt-in via REPRO_PERF_STRICT=1 (useful when
    benchmarking on the same host that produced the baseline).
    """
    speedups = perf_payload.get("speedups_vs_seed")
    if not speedups:
        pytest.skip("seed baseline not available")
    assert speedups["sim_events_per_s"] > 0
    if os.environ.get("REPRO_PERF_STRICT") == "1":
        assert speedups["sim_events_per_s"] > 1.0
