"""History JSONL round-trip serialization (live traces / offline re-check)."""

import io
import json

import pytest

from repro.core.events import Operation, OpType
from repro.core.history import History
from repro.core.checkers import check_rsc, check_with_witness
from repro.core.specification import RegisterSpec
from repro.gryff.cluster import gryff_witness_order


def _sample_history() -> History:
    history = History()
    w1 = history.add(Operation.write("alice", "x", "v1", invoked_at=0.0,
                                     responded_at=2.0, carstamp=(1, 0, "alice")))
    r1 = history.add(Operation.read("bob", "x", "v1", invoked_at=3.0,
                                    responded_at=4.0, carstamp=(1, 0, "alice")))
    history.add(Operation.rmw("carol", "x", observed="v1", new_value="v2",
                              invoked_at=5.0, responded_at=6.5,
                              carstamp=(1, 1, "carol")))
    history.add(Operation.ro_txn("dave", {"x": "v2", "y": None},
                                 invoked_at=7.0, responded_at=8.0,
                                 snapshot_ts=6.5))
    history.add(Operation.write("alice", "y", "w1", invoked_at=9.0,
                                responded_at=None))   # pending mutation
    history.add_message_edge(w1, r1)
    return history


class TestOperationDictRoundTrip:
    def test_all_fields_survive(self):
        op = Operation.rw_txn("p1", read_set={"a": 1}, write_set={"b": 2},
                              invoked_at=1.5, responded_at=2.5,
                              commit_ts=3.25, txn_id="p1:txn1")
        clone = Operation.from_dict(op.to_dict())
        assert clone.op_id == op.op_id
        assert clone.op_type is OpType.RW_TXN
        assert clone.read_set == {"a": 1}
        assert clone.write_set == {"b": 2}
        assert clone.meta == {"commit_ts": 3.25, "txn_id": "p1:txn1"}
        assert clone.responded_at == 2.5

    def test_dict_is_json_able(self):
        op = Operation.read("p", "k", "v", invoked_at=0.0, responded_at=1.0,
                            carstamp=(3, 0, "w"))
        encoded = json.loads(json.dumps(op.to_dict()))
        clone = Operation.from_dict(encoded)
        # Tuples become lists in JSON; consumers normalize with tuple().
        assert tuple(clone.meta["carstamp"]) == (3, 0, "w")


class TestHistoryJsonl:
    def test_round_trip_preserves_everything(self):
        history = _sample_history()
        buffer = io.StringIO()
        history.to_jsonl(buffer)
        loaded = History.from_jsonl(io.StringIO(buffer.getvalue()))

        assert len(loaded) == len(history)
        assert [op.op_id for op in loaded] == [op.op_id for op in history]
        for original, clone in zip(history, loaded):
            assert clone.process == original.process
            assert clone.op_type == original.op_type
            assert clone.key == original.key
            assert clone.result == original.result
            assert clone.invoked_at == original.invoked_at
            assert clone.responded_at == original.responded_at
        assert [(e.src_op, e.dst_op) for e in loaded.message_edges] == \
               [(e.src_op, e.dst_op) for e in history.message_edges]
        assert loaded.is_well_formed()

    def test_round_trip_via_file(self, tmp_path):
        history = _sample_history()
        path = str(tmp_path / "history.jsonl")
        history.to_jsonl(path)
        loaded = History.from_jsonl(path)
        assert len(loaded) == len(history)
        assert loaded.by_process("alice")[0].value == "v1"

    def test_unknown_record_types_are_skipped(self):
        history = _sample_history()
        buffer = io.StringIO()
        buffer.write('{"type":"meta","protocol":"gryff-rsc"}\n\n')
        history.to_jsonl(buffer)
        loaded = History.from_jsonl(io.StringIO(buffer.getvalue()))
        assert len(loaded) == len(history)

    def test_recheck_after_round_trip(self):
        """The paper's checkers accept a history before and after the trip."""
        history = History()
        history.add(Operation.write("alice", "x", "v1", invoked_at=0.0,
                                    responded_at=2.0, carstamp=(1, 0, "alice")))
        history.add(Operation.read("bob", "x", "v1", invoked_at=3.0,
                                   responded_at=4.0, carstamp=(1, 0, "alice")))
        history.add(Operation.rmw("carol", "x", observed="v1", new_value="v2",
                                  invoked_at=5.0, responded_at=6.5,
                                  carstamp=(1, 1, "carol")))
        buffer = io.StringIO()
        history.to_jsonl(buffer)
        loaded = History.from_jsonl(io.StringIO(buffer.getvalue()))

        before = check_rsc(history, spec=RegisterSpec())
        after = check_rsc(loaded, spec=RegisterSpec())
        assert bool(before) and bool(after)

        # The witness-based path (what `repro live-check` runs) agrees too.
        witness = gryff_witness_order(loaded, "rsc")
        assert witness is not None
        assert check_with_witness(loaded, witness, model="rsc",
                                  spec=RegisterSpec())

    def test_crash_truncated_final_line_is_tolerated(self):
        """A kill mid-write loses at most the in-flight record."""
        history = _sample_history()
        buffer = io.StringIO()
        history.to_jsonl(buffer)
        text = buffer.getvalue()
        lines = text.strip().split("\n")
        truncated = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        loaded = History.from_jsonl(io.StringIO(truncated))
        # Everything but the torn last record (an edge here) survives.
        assert len(loaded) == len(history)

    def test_corruption_before_further_records_raises(self):
        text = ('{"type":"op","op_id":1,"process":"p","op_type":"read","key":"x"}\n'
                '{"type":"op","op_id":2,"proc'   # torn line ...
                '\n{"type":"op","op_id":3,"process":"p","op_type":"read","key":"x"}\n')
        with pytest.raises(json.JSONDecodeError):
            History.from_jsonl(io.StringIO(text))

    def test_duplicate_ids_rejected(self):
        lines = io.StringIO(
            '{"type":"op","op_id":7,"process":"p","op_type":"read","key":"x"}\n'
            '{"type":"op","op_id":7,"process":"p","op_type":"read","key":"x"}\n'
        )
        with pytest.raises(ValueError):
            History.from_jsonl(lines)
