"""Smoke tests for the experiment drivers behind the benchmarks.

These use very small simulated durations; the real experiment sizes live in
``benchmarks/``.
"""

import pytest

from repro.bench.appendix_a import appendix_a_report
from repro.bench.gryff_experiments import (
    figure7_experiment,
    overhead_experiment,
    run_ycsb_experiment,
)
from repro.bench.reporting import format_table
from repro.bench.spanner_experiments import (
    FIGURE5_FRACTIONS,
    figure5_experiment,
    run_load_experiment,
    run_retwis_experiment,
)
from repro.bench.table1 import PAPER_TABLE1, table1_report
from repro.gryff.config import GryffVariant
from repro.spanner.config import Variant


# --------------------------------------------------------------------- #
# Reporting helpers
# --------------------------------------------------------------------- #
def test_format_table_renders_all_cells():
    text = format_table(["a", "bee"], [[1, 2.3456], ["xy", None]], title="T")
    assert "T" in text
    assert "bee" in text
    assert "2.3" in text
    assert "xy" in text
    assert len(text.splitlines()) == 5


# --------------------------------------------------------------------- #
# Table 1 and Appendix A
# --------------------------------------------------------------------- #
def test_table1_report_matches_paper():
    report = table1_report()
    assert report["computed"] == PAPER_TABLE1
    assert all(report["matches"].values())
    assert "Table 1" in report["text"]


def test_appendix_a_report_has_no_mismatches():
    report = appendix_a_report()
    assert report["mismatches"] == []
    assert "figure_9" in report["details"]
    assert report["details"]["figure_9"]["rss"]["computed"] is False


# --------------------------------------------------------------------- #
# Spanner experiments
# --------------------------------------------------------------------- #
def test_run_retwis_experiment_smoke():
    result = run_retwis_experiment(
        Variant.SPANNER_RSS, zipf_skew=0.7, duration_ms=3_000.0,
        clients_per_site=2, session_arrival_rate_per_sec=2.0,
        num_keys=500, seed=7,
    )
    assert result.committed > 0
    assert result.recorder.count("ro") > 0
    assert result.recorder.count("rw") > 0
    assert result.ro_percentiles().p50 > 0
    assert 0.0 <= result.blocked_fraction() <= 1.0
    assert result.duration_ms >= 3_000.0


def test_run_retwis_experiment_consistency_checked():
    result = run_retwis_experiment(
        Variant.SPANNER_RSS, zipf_skew=0.9, duration_ms=2_000.0,
        clients_per_site=2, session_arrival_rate_per_sec=2.0,
        num_keys=100, seed=11, record_history=True, check_consistency=True,
    )
    assert result.consistency_ok is True


def test_spanner_strict_variant_consistency_checked():
    result = run_retwis_experiment(
        Variant.SPANNER, zipf_skew=0.9, duration_ms=2_000.0,
        clients_per_site=2, session_arrival_rate_per_sec=2.0,
        num_keys=100, seed=13, record_history=True, check_consistency=True,
    )
    assert result.consistency_ok is True


def test_figure5_experiment_rows_shape():
    outcome = figure5_experiment(
        0.7, duration_ms=3_000.0, clients_per_site=2,
        session_arrival_rate_per_sec=2.0, num_keys=500, seed=5,
    )
    assert len(outcome["rows"]) == len(FIGURE5_FRACTIONS)
    for row in outcome["rows"]:
        assert row["spanner_ms"] >= 0
        assert row["spanner_rss_ms"] >= 0
    assert set(outcome["results"]) == {"spanner", "spanner_rss"}


def test_run_load_experiment_smoke():
    result = run_load_experiment(Variant.SPANNER_RSS, num_clients=4,
                                 duration_ms=200.0)
    assert result.committed > 10
    assert result.recorder.throughput() > 0
    # Single data-center latencies: medians well under a WAN round trip.
    assert result.ro_percentiles().p50 < 20.0


# --------------------------------------------------------------------- #
# Gryff experiments
# --------------------------------------------------------------------- #
def test_run_ycsb_experiment_smoke():
    result = run_ycsb_experiment(GryffVariant.GRYFF_RSC, write_ratio=0.3,
                                 conflict_rate=0.25, duration_ms=3_000.0, seed=9)
    assert result.recorder.count("read") > 0
    assert result.recorder.count("write") > 0
    assert result.p99_read_ms() > 0
    assert 0.0 <= result.slow_read_fraction() <= 1.0


def test_run_ycsb_experiment_consistency_checked():
    result = run_ycsb_experiment(GryffVariant.GRYFF_RSC, write_ratio=0.5,
                                 conflict_rate=0.5, num_clients=6,
                                 duration_ms=2_000.0, seed=3,
                                 record_history=True, check_consistency=True)
    assert result.consistency_ok is True


def test_gryff_linearizable_variant_consistency_checked():
    result = run_ycsb_experiment(GryffVariant.GRYFF, write_ratio=0.5,
                                 conflict_rate=0.5, num_clients=6,
                                 duration_ms=2_000.0, seed=3,
                                 record_history=True, check_consistency=True)
    assert result.consistency_ok is True


def test_figure7_experiment_rows():
    rows = figure7_experiment(0.25, write_ratios=(0.3,), duration_ms=3_000.0,
                              seed=2)
    assert len(rows) == 1
    row = rows[0]
    assert row["gryff_rsc_p99_ms"] <= row["gryff_p99_ms"] * 1.05
    assert row["conflict_rate"] == 0.25


def test_overhead_experiment_rows():
    rows = overhead_experiment(write_ratios=(0.5,), duration_ms=500.0)
    assert len(rows) == 1
    assert abs(rows[0]["throughput_delta_pct"]) < 25.0
