"""Live-transport robustness: reconnect backoff, frame decoding under
corruption, torn-trace tolerance, and connection teardown/recovery.

All live tests bind ephemeral ports (port 0 in the spec)."""

import asyncio
import logging
import random

import pytest

from repro.core.history import History, iter_jsonl_records
from repro.net.cluster import LiveProcess
from repro.net.load import run_load
from repro.net.recorder import TraceWriter, follow_trace_records, read_trace
from repro.net.spec import ClusterSpec
from repro.net.transport import ReconnectPolicy
from repro.net.wire import (WIRE_VERSION, BinaryEncoder, FrameDecoder,
                            WireError, encode_frame)
from repro.sim.network import Message


# --------------------------------------------------------------------------- #
# ReconnectPolicy schedule
# --------------------------------------------------------------------------- #
class TestReconnectPolicy:
    def test_base_delay_grows_exponentially_to_the_cap(self):
        policy = ReconnectPolicy(initial_s=0.05, max_s=2.0, multiplier=2.0)
        delays = [policy.base_delay(attempt) for attempt in range(1, 9)]
        assert delays[:6] == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        assert delays[6:] == [2.0, 2.0]    # capped, stays capped

    def test_jitter_spreads_over_the_configured_band(self):
        policy = ReconnectPolicy(initial_s=1.0, max_s=1.0, jitter=0.5)
        rng = random.Random(3)
        samples = [policy.delay(1, rng) for _ in range(200)]
        assert all(0.5 <= s <= 1.0 for s in samples)
        assert max(samples) - min(samples) > 0.2   # actually spread out

    def test_zero_jitter_is_deterministic(self):
        policy = ReconnectPolicy(initial_s=0.2, max_s=0.8, jitter=0.0)
        assert policy.delay(2, random.Random(0)) == pytest.approx(0.4)

    def test_budget_exhaustion(self):
        policy = ReconnectPolicy(budget=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)
        assert not ReconnectPolicy(budget=None).exhausted(10_000)

    @pytest.mark.parametrize("kwargs", [
        {"initial_s": 0.0},
        {"initial_s": 0.5, "max_s": 0.1},
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"budget": 0},
    ])
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReconnectPolicy(**kwargs)

    def test_dialer_gives_up_when_the_budget_runs_out(self, caplog):
        """A channel toward a dead address retries `budget` times, then
        drops its queued frames with a warning and closes."""

        class Probe:
            site = "DC"

            def deliver(self, message):
                pass

        async def scenario():
            spec = ClusterSpec.gryff(num_replicas=1, base_port=0)
            boot = LiveProcess(spec)
            await boot.start()     # fixes a concrete port...
            await boot.stop()      # ...then nothing listens on it
            client = LiveProcess(spec, host_nodes=[])
            client.transport.reconnect = ReconnectPolicy(
                initial_s=0.01, max_s=0.02, budget=3)
            await client.start()
            try:
                client.transport.register("probe", Probe())
                client.transport.send("probe", "replica0", "ping", {})
                await asyncio.sleep(0.5)
            finally:
                await client.stop()

        with caplog.at_level(logging.WARNING, logger="repro.net"):
            asyncio.run(scenario())
        assert any("giving up" in record.message for record in caplog.records)


# --------------------------------------------------------------------------- #
# Frame decoding under corruption
# --------------------------------------------------------------------------- #
class TestFrameDecoder:
    def test_reassembles_frames_from_single_byte_fragments(self):
        frames = encode_frame({"n": 1}) + encode_frame({"n": 2})
        decoder = FrameDecoder()
        records = []
        for i in range(len(frames)):
            records.extend(decoder.feed(frames[i:i + 1]))
        assert records == [{"n": 1}, {"n": 2}]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_chunk(self):
        chunk = b"".join(encode_frame({"n": i}) for i in range(5))
        assert [r["n"] for r in FrameDecoder().feed(chunk)] == list(range(5))

    def test_oversized_header_rejected_before_the_body_arrives(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="announced"):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_undecodable_body_raises(self):
        import struct
        body = b"\x00not json\xff"
        with pytest.raises(WireError, match="undecodable"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_non_object_frame_raises(self):
        import struct
        body = b"[1,2,3]"
        with pytest.raises(WireError, match="not an object"):
            FrameDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_incomplete_frame_stays_buffered(self):
        frame = encode_frame({"n": 1})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [{"n": 1}]


class TestReadLoopRobustness:
    def _assert_cluster_survives(self, poison: bytes):
        """Connect raw TCP to a replica, send `poison`, and require that the
        server closes only that connection and keeps serving real clients
        with no op lost."""

        async def scenario():
            spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
            server = LiveProcess(spec)
            await server.start()
            try:
                port = spec.nodes["replica0"].port
                reader, writer = await asyncio.open_connection("127.0.0.1",
                                                               port)
                writer.write(poison)
                await writer.drain()
                writer.write_eof()
                # The server resets the poisoned connection (EOF to us)...
                assert await asyncio.wait_for(reader.read(), timeout=5) == b""
                writer.close()
                # ...while the cluster keeps serving: a full load completes.
                summary = await run_load(
                    spec, num_clients=2, duration_ms=None, ops_per_client=3,
                    write_ratio=0.5, conflict_rate=0.2, seed=7)
            finally:
                await server.stop()
            return summary

        summary = asyncio.run(scenario())
        assert summary["ops"] == 6

    def test_garbage_bytes_reset_the_connection_cleanly(self):
        # 4-byte header announcing a 4 GiB frame, then junk.
        self._assert_cluster_survives(b"\xff\xff\xff\xffjunk")

    def test_corrupt_frame_body_resets_the_connection_cleanly(self):
        import struct
        body = b"\x00\x01 not json"
        self._assert_cluster_survives(struct.pack(">I", len(body)) + body)

    def test_truncated_frame_resets_the_connection_cleanly(self):
        frame = encode_frame({"v": 1, "src": "x", "dst": "replica0",
                              "kind": "read1", "payload": {}})
        self._assert_cluster_survives(frame[:-3])

    def test_sever_all_then_reconnect_serves_again(self):
        """Tearing down every live connection mid-lifetime only costs a
        reconnect: the next load completes in full."""

        async def scenario():
            spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
            server = LiveProcess(spec)
            await server.start()
            try:
                first = await run_load(spec, num_clients=1, duration_ms=None,
                                       ops_per_client=2, write_ratio=1.0,
                                       conflict_rate=0.0, seed=1)
                server.transport.sever_all()
                server.transport.sever_peer("replica1")     # idempotent
                server.transport.sever_peer("no-such-node")  # unknown: no-op
                second = await run_load(spec, num_clients=1, duration_ms=None,
                                        ops_per_client=2, write_ratio=1.0,
                                        conflict_rate=0.0, seed=2)
            finally:
                await server.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first["ops"] == 2 and second["ops"] == 2


# --------------------------------------------------------------------------- #
# Binary wire v2: codec roundtrips, fragmentation, poisoned batches,
# mixed-version streams, and the JSON-client downgrade path.
# --------------------------------------------------------------------------- #
def _msg(payload, kind="read1", msg_id=1):
    return Message(src="client1@CA", dst="replica0", kind=kind,
                   payload=payload, send_time=12.5, msg_id=msg_id)


class TestWireV2Codec:
    def test_roundtrip_covers_every_value_type(self):
        payload = {
            "none": None, "yes": True, "no": False,
            "small": 7, "big": 2 ** 40, "neg": -123456,
            "float": 3.25, "text": "héllo",
            "list": [1, "two", [3.0, None], ("tu", "ple")],
            "nested": {"deps": [[1, 2, "replica1"]], "empty": {}},
        }
        frame = BinaryEncoder().encode_batch([_msg(payload)])
        (record,) = FrameDecoder().feed(frame)
        expected = dict(payload)
        expected["list"] = [1, "two", [3.0, None], ["tu", "ple"]]  # as JSON
        assert record["payload"] == expected
        assert record["src"] == "client1@CA"
        assert record["kind"] == "read1"
        assert record["send_time"] == 12.5
        assert record["msg_id"] == 1

    def test_non_string_dict_keys_coerce_like_json(self):
        import json

        payload = {1: "a", 2.5: "b", True: "c", None: "d"}
        frame = BinaryEncoder().encode_batch([_msg(payload)])
        (record,) = FrameDecoder().feed(frame)
        assert record["payload"] == json.loads(json.dumps(payload))

    def test_byte_at_a_time_fragmentation(self):
        """HELLO + single MSG + BATCH reassemble from 1-byte fragments."""
        encoder = BinaryEncoder()
        batch = [_msg({"key": f"user:{i}", "op_id": i}, msg_id=i)
                 for i in range(5)]
        stream = (encoder.hello_frame()
                  + encoder.encode_batch([_msg({"solo": 1})])
                  + encoder.encode_batch(batch))
        decoder = FrameDecoder()
        records = []
        for i in range(len(stream)):
            records.extend(decoder.feed(stream[i:i + 1]))
        assert len(records) == 6
        assert records[0]["payload"] == {"solo": 1}
        assert [r["payload"]["op_id"] for r in records[1:]] == list(range(5))
        assert decoder.pending_bytes == 0
        assert decoder.peer_version == WIRE_VERSION

    def test_mixed_json_and_binary_frames_on_one_stream(self):
        encoder = BinaryEncoder()
        stream = (encode_frame({"n": 1})
                  + encoder.encode_batch([_msg({"n": 2})])
                  + encode_frame({"n": 3}))
        records = FrameDecoder().feed(stream)
        assert [r.get("n", r.get("payload", {}).get("n")) for r in records] \
            == [1, 2, 3]

    def test_intern_cap_falls_back_to_one_shot_literals(self, monkeypatch):
        import repro.net.wire as wire

        monkeypatch.setattr(wire, "_INTERN_LIMIT", 4)
        encoder = BinaryEncoder()
        batch = [_msg({f"key{i}": i, "hot": "x"}, msg_id=i)
                 for i in range(16)]
        records = FrameDecoder().feed(encoder.encode_batch(batch))
        assert [r["payload"][f"key{i}"] for i, r in enumerate(records)] \
            == list(range(16))
        assert len(encoder._ids) == 4   # capped; the rest were literals

    def test_unknown_interned_id_raises(self):
        encoder = BinaryEncoder()
        frame = encoder.encode_batch([_msg({"a": 1})])
        # Byte 6 is the src intern ref (after header, magic, frame type);
        # 0x7e is a reference to id 63, which was never defined.
        with pytest.raises(WireError, match="unknown interned id"):
            FrameDecoder().feed(frame[:6] + b"\x7e" + frame[7:])

    @pytest.mark.parametrize("mutate", [
        lambda f: f[:4] + bytes([f[4], 99]) + f[6:],     # unknown frame type
        lambda f: f[:-3] + b"\x00\x00\x00",              # trailing garbage
        lambda f: f[:4] + f[4:6] + b"\xff" * (len(f) - 6),  # varint soup
    ])
    def test_malformed_v2_bodies_raise_wire_errors(self, mutate):
        frame = BinaryEncoder().encode_batch(
            [_msg({"key": "user:1", "value": "v", "op_id": 9})])
        with pytest.raises(WireError):
            FrameDecoder().feed(mutate(frame))

    def test_truncated_v2_frame_stays_buffered(self):
        frame = BinaryEncoder().encode_batch([_msg({"a": 1})])
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-2]) == []
        assert decoder.pending_bytes == len(frame) - 2
        (record,) = decoder.feed(frame[-2:])
        assert record["payload"] == {"a": 1}


class TestWireV2ReadLoop(TestReadLoopRobustness):
    """Poisoned *binary* frames must reset only the poisoned connection."""

    def test_garbage_v2_frame_resets_the_connection_cleanly(self):
        import struct
        body = b"\xb2\x63garbage-after-unknown-frame-type"
        self._assert_cluster_survives(struct.pack(">I", len(body)) + body)

    def test_truncated_v2_batch_resets_the_connection_cleanly(self):
        encoder = BinaryEncoder()
        frame = encoder.encode_batch(
            [_msg({"key": f"user:{i}"}, msg_id=i) for i in range(4)])
        # Keep the length header honest for the mangled body so the frame
        # completes (and fails in the v2 decoder, not the length check).
        body = frame[4:len(frame) // 2]
        import struct
        self._assert_cluster_survives(struct.pack(">I", len(body)) + body)

    def test_oversized_v2_batch_announcement_resets_cleanly(self):
        import struct
        self._assert_cluster_survives(
            struct.pack(">I", 0xFFFFFFF) + b"\xb2\x03")

    # Inherited JSON poisoning tests rerun here unchanged: a v2 server keeps
    # decoding v1 poison identically (per-frame version dispatch).


class TestCodecDowngrade:
    """A v2 (binary) listener serves a v1 (JSON) client in v1 — and the two
    codecs can share one cluster."""

    def _load(self, spec, codec, seed):
        return run_load(spec, num_clients=2, duration_ms=None,
                        ops_per_client=3, write_ratio=0.5, conflict_rate=0.2,
                        seed=seed, codec=codec)

    def test_binary_server_serves_a_json_client(self):
        async def scenario():
            spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
            server = LiveProcess(spec, codec="binary")
            await server.start()
            try:
                json_summary = await self._load(spec, "json", seed=11)
                binary_summary = await self._load(spec, "binary", seed=11)
            finally:
                await server.stop()
            return json_summary, binary_summary

        json_summary, binary_summary = asyncio.run(scenario())
        assert json_summary["ops"] == 6 and json_summary["codec"] == "json"
        assert binary_summary["ops"] == 6
        # Same seed, same cluster: the codec must not change the results.
        assert set(json_summary["categories"]) == \
            set(binary_summary["categories"])

    def test_json_server_serves_a_binary_client(self):
        """The reverse downgrade: replicas dial each other in v1, yet a v2
        client still completes (replies follow the peer's announced codec)."""
        async def scenario():
            spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
            server = LiveProcess(spec, codec="json")
            await server.start()
            try:
                return await self._load(spec, "binary", seed=13)
            finally:
                await server.stop()

        summary = asyncio.run(scenario())
        assert summary["ops"] == 6


# --------------------------------------------------------------------------- #
# Torn-trace tolerance (crash-truncated captures)
# --------------------------------------------------------------------------- #
def _write_torn_trace(path):
    from repro.core.events import Operation

    history = History()
    history.add(Operation.write("p1", "x", "v", invoked_at=0.0,
                                responded_at=1.0, carstamp=(1, 0, "p1")))
    history.add(Operation.read("p1", "x", "v", invoked_at=2.0,
                               responded_at=3.0, carstamp=(1, 0, "p1")))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"type":"meta","protocol":"gryff-rsc"}\n')
        history.to_jsonl(handle)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert text.endswith("}\n")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text[:-15])   # crash mid-write of the final record


class TestTornTraces:
    def test_iter_jsonl_records_skips_the_torn_tail_with_a_warning(self):
        lines = ['{"a": 1}\n', '{"b": 2}\n', '{"c": ']
        with pytest.warns(RuntimeWarning, match="torn record"):
            records = list(iter_jsonl_records(lines))
        assert records == [{"a": 1}, {"b": 2}]

    def test_read_trace_tolerates_a_torn_final_record(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        _write_torn_trace(path)
        with pytest.warns(RuntimeWarning, match="torn record"):
            meta, history = read_trace(path)
        assert meta["protocol"] == "gryff-rsc"
        assert len(history) == 1

    def test_history_from_jsonl_tolerates_a_torn_final_record(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        _write_torn_trace(path)
        with pytest.warns(RuntimeWarning, match="torn record"):
            history = History.from_jsonl(path)
        assert len(history) == 1

    def test_follow_trace_records_warns_on_a_torn_tail(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        _write_torn_trace(path)
        with pytest.warns(RuntimeWarning, match="torn record"):
            records = list(follow_trace_records(path, idle_timeout=0))
        assert [r.get("type") for r in records] == ["meta", "op"]

    def test_mid_stream_corruption_still_raises(self, tmp_path):
        """Only the *final* record may be torn; corruption mid-file is a real
        error, not crash truncation."""
        path = str(tmp_path / "corrupt.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"type":"meta"}\n')
            handle.write("not json at all\n")
            handle.write('{"type":"inv","process":"p1","invoked_at":1.0}\n')
        with pytest.raises(ValueError):
            list(follow_trace_records(path, idle_timeout=0))

    def test_rotation_fsyncs_the_completed_file(self, tmp_path, monkeypatch):
        """Completed files of a rotated set must be durable even when
        per-record fsync is off: readers treat non-final files as torn-free."""
        synced = []
        monkeypatch.setattr("repro.net.recorder.os.fsync",
                            lambda fd: synced.append(fd))
        writer = TraceWriter(str(tmp_path / "trace.jsonl"), rotate_bytes=120,
                             fsync=False)
        for i in range(12):
            writer.record_invocation(f"client{i}@CA", float(i))
        writer.close()
        assert synced, "rotation must fsync the file it is completing"
        assert len(list(tmp_path.glob("trace-*.jsonl"))) > 1
