"""Backend-differential suite: one seeded YCSB mix, every backend.

The same workload generators, the same unified executor, the same driver —
run against sim-Gryff (both variants), sim-Spanner (both variants), and a
live 3-node Gryff cluster over real asyncio TCP.  Each captured history
must pass the checker of the level the sessions declared, and capability
negotiation must reject every unsupported (backend, level) pair — the
paper's portability claim, tested end to end.
"""

import asyncio

import pytest

from repro.api import (
    CapabilityError,
    ConsistencyLevel,
    open_store,
    ycsb_executor,
)
from repro.gryff.config import GryffConfig, GryffVariant
from repro.spanner.config import SpannerConfig, Variant
from repro.workloads.clients import ClosedLoopDriver
from repro.workloads.ycsb import YcsbWorkload

#: The one seeded mix every backend runs (write-heavy with real conflicts,
#: so the checkers see contended keys and adopted carstamps/timestamps).
MIX = dict(write_ratio=0.5, conflict_rate=0.4)
SEED = 11
NUM_CLIENTS = 3
OPS_PER_CLIENT = 8


def _pairs(store, sites, level=None):
    pairs = []
    for index in range(NUM_CLIENTS):
        site = sites[index % len(sites)]
        session = store.session(site=site, name=f"c{index + 1}@{site}",
                                level=level)
        pairs.append((session, YcsbWorkload(
            client_id=session.name, seed=SEED * 1000 + index, **MIX)))
    return pairs


def _run_sim(store, level=None):
    pairs = _pairs(store, store.cluster.config.sites, level=level)
    driver = ClosedLoopDriver(store.env, pairs, ycsb_executor,
                              operations_per_client=OPS_PER_CLIENT)
    driver.start()
    store.run()
    return driver


@pytest.mark.parametrize("backend,config,protocol,expected_level", [
    ("sim-gryff", GryffConfig(variant=GryffVariant.GRYFF_RSC),
     "gryff-rsc", ConsistencyLevel.RSC),
    ("sim-gryff", GryffConfig(variant=GryffVariant.GRYFF),
     "gryff", ConsistencyLevel.LIN),
    ("sim-spanner", SpannerConfig(variant=Variant.SPANNER_RSS),
     "spanner-rss", ConsistencyLevel.RSS),
    ("sim-spanner", SpannerConfig(variant=Variant.SPANNER),
     "spanner", ConsistencyLevel.STRICT_SER),
], ids=["gryff-rsc", "gryff-lin", "spanner-rss", "spanner-strict"])
def test_same_mix_passes_declared_level_on_every_sim_backend(
        backend, config, protocol, expected_level):
    store = open_store(backend, config=config)
    assert store.protocol == protocol
    assert store.native_level is expected_level
    _run_sim(store)

    history = store.history
    assert history.is_well_formed()
    assert len(history) == NUM_CLIENTS * OPS_PER_CLIENT
    assert {session.level for session in store.sessions} == {expected_level}
    result = store.check_consistency()
    assert result.model == expected_level.checker_model
    assert result.satisfied, result.reason


def test_gryff_linearizable_run_also_passes_declared_rsc():
    """A LIN deployment honors an RSC declaration (weaker, same model)."""
    store = open_store("sim-gryff",
                       config=GryffConfig(variant=GryffVariant.GRYFF))
    _run_sim(store, level="rsc")
    assert {s.level for s in store.sessions} == {ConsistencyLevel.RSC}
    result = store.check_consistency(level="rsc")
    assert result.model == "rsc"
    assert result.satisfied, result.reason


def test_same_mix_passes_rsc_on_a_live_three_node_gryff_cluster():
    from repro.net.cluster import LiveProcess
    from repro.net.spec import ClusterSpec

    async def scenario():
        spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
        server = LiveProcess(spec)
        await server.start()
        store = open_store(spec)
        try:
            pairs = _pairs(store, spec.sites())
            driver = ClosedLoopDriver(store.env, pairs, ycsb_executor,
                                      operations_per_client=OPS_PER_CLIENT)
            await store.start()
            await store.drive(driver)
        finally:
            await store.stop()
            await server.stop()
        return store

    store = asyncio.run(scenario())
    assert store.protocol == "gryff-rsc"
    history = store.history
    assert history.is_well_formed()
    assert len(history) == NUM_CLIENTS * OPS_PER_CLIENT
    assert {s.level for s in store.sessions} == {ConsistencyLevel.RSC}
    result = store.check_consistency()
    assert result.model == "rsc"
    assert result.satisfied, result.reason


def test_sim_and_live_issue_the_same_logical_operations():
    """The unified API sends the same seeded key/value stream to every
    backend — the histories differ only in timing and protocol metadata."""
    def issued(pairs):
        return [
            [(op.kind, op.key, op.value) for op in
             ((workload.next_operation()) for _ in range(OPS_PER_CLIENT))]
            for _session, workload in pairs
        ]

    gryff = _pairs(open_store("sim-gryff"), ["CA", "VA", "IR"])
    spanner = _pairs(open_store("sim-spanner"), ["CA", "VA", "IR"])
    gryff_stream = issued(gryff)
    spanner_stream = issued(spanner)
    # Keys embed the per-client name, which matches across backends because
    # the session names are pinned; the value streams must align exactly.
    assert [[entry[0] for entry in client] for client in gryff_stream] == \
           [[entry[0] for entry in client] for client in spanner_stream]
    assert gryff_stream == spanner_stream


def test_negotiation_rejects_unsupported_pairs_on_every_backend():
    rejects = [
        ("sim-gryff", GryffConfig(variant=GryffVariant.GRYFF_RSC),
         ["lin", "rss", "strict_ser"]),
        ("sim-gryff", GryffConfig(variant=GryffVariant.GRYFF),
         ["rss", "strict_ser"]),
        ("sim-spanner", SpannerConfig(variant=Variant.SPANNER_RSS),
         ["rsc", "lin", "strict_ser"]),
        ("sim-spanner", SpannerConfig(variant=Variant.SPANNER),
         ["rsc", "lin"]),
    ]
    for backend, config, levels in rejects:
        store = open_store(backend, config=config)
        for level in levels:
            with pytest.raises(CapabilityError, match="cannot honor"):
                store.session(level=level)
        assert store.sessions == []   # nothing half-opened
