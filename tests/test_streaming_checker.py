"""Streaming (epoch-windowed) checking: cuts, frontiers, equivalence.

The load-bearing property: for any history, the streaming checker fed the
interleaved invocation/completion event stream must return the *same verdict*
as the offline checker on the whole history, for every choice of epoch size —
and the first violated epoch must localize the violation (the offline checker
fails on the prefix ending at that epoch and passes on the prefix before it).
"""

import random

import pytest

from repro.bench.perfsuite import _invocation_witness, synthetic_history
from repro.core.checkers import (
    StreamingChecker,
    StreamingWitnessChecker,
    check_linearizability,
    check_rsc,
    check_rss,
    check_segment,
    check_with_witness,
    stream_history,
)
from repro.core.checkers.base import SerializationSearch
from repro.core.events import Operation, reset_op_ids
from repro.core.history import History, SegmentStream
from repro.core.orders import RealTimeIndex
from repro.core.relations import CausalOrder
from repro.core.specification import RegisterSpec


def _history(ops):
    history = History()
    for op in ops:
        history.add(op)
    return history


# --------------------------------------------------------------------------- #
# SegmentStream: quiescent cut detection
# --------------------------------------------------------------------------- #
class TestSegmentStream:
    def test_cuts_at_quiescent_frontier(self):
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        b = Operation.write("P2", "y", 2, invoked_at=0.5, responded_at=2)
        c = Operation.read("P1", "x", 1, invoked_at=3, responded_at=4)
        stream = SegmentStream()
        assert stream.begin("P1", 0, a) == []
        assert stream.begin("P2", 0.5, b) == []
        stream.complete(a)
        stream.complete(b)           # quiescent at t=2
        segments = stream.begin("P1", 3, c)   # invocation strictly later
        assert len(segments) == 1
        assert segments[0].end_time == 2
        assert [op.op_id for op in segments[0].history] == [a.op_id, b.op_id]
        stream.complete(c)
        final = stream.close()
        assert final.final and len(final.history) == 1

    def test_no_cut_while_an_invocation_is_outstanding(self):
        reset_op_ids()
        long_op = Operation.write("P1", "x", 1, invoked_at=0, responded_at=50)
        quick = Operation.write("P2", "y", 2, invoked_at=1, responded_at=2)
        late = Operation.read("P2", "y", 2, invoked_at=10, responded_at=11)
        stream = SegmentStream()
        stream.begin("P1", 0, long_op)
        stream.begin("P2", 1, quick)
        stream.complete(quick)
        # P1 is still outstanding: the later invocation must NOT cut.
        assert stream.begin("P2", 10, late) == []
        stream.complete(late)
        stream.complete(long_op)
        assert stream.close().index == 0   # one big segment

    def test_equal_timestamp_tie_merges(self):
        # resp(a) == inv(b) cross-process means a and b are CONCURRENT in
        # the real-time order; a cut between them would manufacture a→b.
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=2)
        b = Operation.write("P2", "x", 2, invoked_at=2, responded_at=3)
        stream = SegmentStream()
        stream.begin("P1", 0, a)
        stream.complete(a)
        assert stream.begin("P2", 2, b) == []   # tie: merge, no cut
        stream.complete(b)
        final = stream.close()
        assert len(final.history) == 2

    def test_unmatched_completion_disables_cutting(self):
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        b = Operation.write("P1", "y", 2, invoked_at=5, responded_at=6)
        stream = SegmentStream()
        stream.complete(a)            # no begin() was announced
        assert stream.begin("P1", 5, b) == []
        stream.complete(b)
        assert stream.close().index == 0

    def test_min_epoch_ops_floor(self):
        reset_op_ids()
        stream = SegmentStream(min_epoch_ops=3)
        cuts = 0
        now = 0.0
        for i in range(8):
            op = Operation.write("P1", "x", i, invoked_at=now,
                                 responded_at=now + 1)
            cuts += len(stream.begin("P1", now, op))
            stream.complete(op)
            now += 2.0
        final = stream.close()
        assert cuts == 2              # epochs of 3, 3, then the final 2
        assert len(final.history) == 2

    def test_out_of_order_invocation_raises(self):
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        stream = SegmentStream()
        stream.begin("P1", 0, a)
        stream.complete(a)
        stream.begin("P2", 5)        # finalizes the first segment (cut at 1)
        with pytest.raises(ValueError, match="out of order"):
            stream.begin("P3", 0.5)

    def test_unannounced_completion_straddling_a_cut_raises(self):
        """Regression: an unannounced completion whose invocation predates
        an already-emitted cut would retroactively break the no-op-spans-a-
        cut invariant — it must be rejected, not silently segmented."""
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        straddler = Operation.write("P9", "y", 2, invoked_at=0.5,
                                    responded_at=6)
        stream = SegmentStream()
        stream.begin("P1", 0, a)
        stream.complete(a)
        assert len(stream.begin("P2", 5)) == 1     # cut at t=1
        with pytest.raises(ValueError, match="out of order"):
            stream.complete(straddler)             # no begin() was announced

    def test_abandoned_invocation_reenables_cuts(self):
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        stream = SegmentStream()
        stream.begin("P1", 0, a)
        stream.complete(a)
        stream.begin("P2", 0.5)      # e.g. a transaction that will abort out
        stream.abandon("P2", 3)
        segments = stream.begin("P3", 5)
        assert len(segments) == 1 and segments[0].end_time == 1

    def test_pending_op_lands_in_final_segment(self):
        reset_op_ids()
        done = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        pending = Operation.write("P2", "x", 2, invoked_at=2, responded_at=None)
        stream = SegmentStream(min_epoch_ops=2)   # keep both in one segment
        stream.begin("P1", 0, done)
        stream.complete(done)
        assert stream.begin("P2", 2, pending) == []   # floor blocks the cut
        final = stream.close()
        ids = {op.op_id for op in final.history}
        assert ids == {done.op_id, pending.op_id}
        assert len(final.history.pending()) == 1
        assert stream.ops_seen == 2


# --------------------------------------------------------------------------- #
# Frontier semantics: the carried state SET is load-bearing
# --------------------------------------------------------------------------- #
class TestFrontier:
    def test_concurrent_unread_writes_leave_both_states(self):
        reset_op_ids()
        history = _history([
            Operation.write("P1", "x", 1, invoked_at=0, responded_at=2),
            Operation.write("P2", "x", 2, invoked_at=0.5, responded_at=2.5),
        ])
        outcome = check_segment(history, "rsc", spec=RegisterSpec(),
                                collect_frontier=True)
        assert outcome.result
        assert sorted(state["x"] for state in outcome.frontier.states) == [1, 2]

    def test_later_epoch_may_read_either_survivor(self):
        reset_op_ids()
        history = _history([
            Operation.write("P1", "x", 1, invoked_at=0, responded_at=2),
            Operation.write("P2", "x", 2, invoked_at=0.5, responded_at=2.5),
            Operation.read("P3", "x", 1, invoked_at=3, responded_at=4),
        ])
        assert bool(check_rsc(history))
        report = stream_history(history, "rsc")
        assert report.satisfied and report.epochs == 2

    def test_final_states_enumeration(self):
        reset_op_ids()
        ops = [
            Operation.write("P1", "x", 1, invoked_at=0, responded_at=2),
            Operation.write("P2", "x", 2, invoked_at=0.5, responded_at=2.5),
        ]
        search = SerializationSearch(RegisterSpec(), ops)
        states, witness = search.final_states()
        assert len(states) == 2
        assert witness is not None and len(witness) == 2

    def test_final_states_rejects_optional_ops(self):
        reset_op_ids()
        done = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        pending = Operation.write("P2", "x", 2, invoked_at=0, responded_at=None)
        search = SerializationSearch(RegisterSpec(), [done],
                                     optional_operations=[pending])
        with pytest.raises(ValueError):
            search.final_states()


# --------------------------------------------------------------------------- #
# Streaming == offline (the acceptance property)
# --------------------------------------------------------------------------- #
OFFLINE = {
    "rsc": check_rsc,
    "rss": check_rss,
    "linearizability": check_linearizability,
}


def _cut_boundaries(report):
    return [v.end_time for v in report.verdicts if v.end_time is not None]


class TestStreamingEqualsOffline:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("model", ["rsc", "linearizability"])
    def test_satisfied_histories_agree(self, seed, model):
        rng = random.Random(seed * 101 + 7)
        history = synthetic_history(
            40, n_processes=rng.choice([2, 3, 4]), n_keys=4,
            write_ratio=0.5, seed=seed, pending_mutations=rng.choice([0, 1]))
        offline = OFFLINE[model](history)
        report = stream_history(history, model,
                                min_epoch_ops=rng.choice([1, 2, 5]))
        assert bool(offline) == report.satisfied == True  # noqa: E712
        assert report.ops_checked == len(history)

    @pytest.mark.parametrize("seed", range(8))
    def test_corrupted_histories_agree_and_localize(self, seed):
        rng = random.Random(seed * 31 + 5)
        history = synthetic_history(40, n_processes=3, n_keys=3,
                                    write_ratio=0.5, seed=seed + 100,
                                    pending_mutations=0)
        # Corrupt one read: make it observe a value for a key that was
        # genuinely written earlier but then overwritten and re-read — i.e.
        # force staleness the regular constraint forbids.
        ops = history.operations()
        reads = [op for op in ops if op.op_type.value == "read"
                 and op.result is not None]
        if not reads:
            pytest.skip("no complete read to corrupt at this seed")
        victim = rng.choice(reads)
        victim.result = f"bogus-{seed}"
        offline = check_rsc(history)
        min_epoch = rng.choice([1, 3])
        report = stream_history(history, "rsc", min_epoch_ops=min_epoch)
        assert bool(offline) == report.satisfied
        if report.satisfied:
            return
        violation = report.first_violation
        assert violation is not None
        # Localization: the offline checker fails on the prefix through the
        # violated epoch and passes on the prefix before it.  (Epochs are
        # invocation windows and these histories number operations in
        # invocation order, so epoch op-id ranges are contiguous.)
        prefix = _history([op for op in ops
                           if op.op_id <= violation.op_ids[1]])
        assert not check_rsc(prefix)
        before = _history(
            [op for op in ops if op.op_id < violation.op_ids[0]])
        assert bool(check_rsc(before))
        # Epochs after the first violation are reported as skipped.
        assert all(v.satisfied is None for v in report.verdicts
                   if v.index > violation.index)

    @pytest.mark.parametrize("min_epoch_ops", [1, 2, 7, 1000])
    def test_every_epoch_size_gives_the_same_verdict(self, min_epoch_ops):
        history = synthetic_history(60, n_processes=3, n_keys=4, seed=42,
                                    pending_mutations=1)
        report = stream_history(history, "rsc", min_epoch_ops=min_epoch_ops)
        assert report.satisfied == bool(check_rsc(history))

    def test_transactional_stream_matches_check_rss(self):
        history = synthetic_history(24, n_processes=3, n_keys=3, seed=9,
                                    pending_mutations=0)
        txn_history = History()
        for op in history:
            if op.op_type.value == "read":
                txn = Operation.ro_txn(op.process, {op.key: op.result},
                                       invoked_at=op.invoked_at,
                                       responded_at=op.responded_at)
            else:
                txn = Operation.rw_txn(op.process, {}, {op.key: op.value},
                                       invoked_at=op.invoked_at,
                                       responded_at=op.responded_at)
            txn_history.add(txn)
        report = stream_history(txn_history, "rss", min_epoch_ops=2)
        assert report.satisfied == bool(check_rss(txn_history))

    def test_message_edges_feed_within_epochs(self):
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        b = Operation.read("P2", "x", 1, invoked_at=2, responded_at=3)
        history = _history([a, b])
        history.add_message_edge(a, b)
        report = stream_history(history, "rsc", min_epoch_ops=1)
        assert report.satisfied == bool(check_rsc(history)) == True  # noqa: E712

    def test_message_edge_from_pending_source_is_not_dropped(self):
        """Regression: an edge whose source op is still pending when the
        destination completes must be parked and applied once the source
        lands (here: at close, in the same final segment) — the streaming
        verdict must keep matching the offline checker."""
        reset_op_ids()
        w = Operation.write("P1", "x", 1, invoked_at=0, responded_at=10)
        r = Operation.read("P2", "x", None, invoked_at=1, responded_at=2)
        history = _history([w, r])
        # Message from P1 to P2 before r: w ⇝ r, yet r reads the initial
        # value — an RSC violation the edge alone imposes.
        history.add_message_edge(w, r)
        offline = check_rsc(history)
        report = stream_history(history, "rsc", min_epoch_ops=1)
        assert report.satisfied == bool(offline) == False  # noqa: E712

    def test_message_edge_into_pending_destination_is_fed(self):
        """Regression: an edge whose destination never completes must still
        reach the final segment (where the pending op lands) — dropping it
        can flip a violation into SATISFIED.

        Here the edge e→b forces w1 < e < b, and b must be included (r2
        reads its value); then r_old can no longer read w1's value, so the
        history is VIOLATED — but only if the edge is actually delivered.
        """
        reset_op_ids()
        w1 = Operation.write("P1", "x", 1, invoked_at=0, responded_at=5)
        e = Operation.read("P2", "x", 1, invoked_at=2, responded_at=3)
        b = Operation.write("P3", "x", 2, invoked_at=4, responded_at=None)
        r2 = Operation.read("P4", "x", 2, invoked_at=4.5, responded_at=7)
        r_old = Operation.read("P4", "x", 1, invoked_at=8, responded_at=9)
        history = _history([w1, e, b, r2, r_old])
        history.add_message_edge(e, b)
        offline = check_rsc(history)
        report = stream_history(history, "rsc", min_epoch_ops=1)
        assert report.satisfied == bool(offline) == False  # noqa: E712
        # Sanity: without the edge the history is admitted by both, so the
        # edge delivery is exactly what the verdict hinges on.
        history.message_edges.clear()
        assert bool(check_rsc(history))
        assert stream_history(history, "rsc", min_epoch_ops=1).satisfied

    def test_mixed_history_requires_explicit_spec(self):
        """The offline checker infers its spec from the whole history; a
        stream that turns transactional after the spec was pinned fails
        loudly instead of reporting a false violation."""
        reset_op_ids()
        history = _history([
            Operation.write("P1", "x", 1, invoked_at=0, responded_at=1),
            Operation.rw_txn("P2", {}, {"y": 2}, invoked_at=5, responded_at=6),
        ])
        with pytest.raises(ValueError, match="explicit spec"):
            stream_history(history, "linearizability", min_epoch_ops=1)

    def test_zero_duration_op_does_not_disable_cutting(self):
        """Regression: an op with invoked_at == responded_at must have its
        begin event processed before its completion; otherwise the stream
        falls back to one batch epoch and bounded memory is silently lost."""
        reset_op_ids()
        ops = []
        for i in range(10):
            t = 3.0 * i
            ops.append(Operation.write("P1", "x", f"v{i}", invoked_at=t,
                                       responded_at=t if i == 4 else t + 1))
        history = _history(ops)
        report = stream_history(history, "rsc", min_epoch_ops=1)
        assert report.satisfied
        assert report.epochs == 10

    def test_unsupported_model_rejected(self):
        with pytest.raises(ValueError, match="compose"):
            StreamingChecker("sequential_consistency")


# --------------------------------------------------------------------------- #
# Witness-mode streaming (witness fn: the bench's linearizable oracle order)
# --------------------------------------------------------------------------- #
class TestStreamingWitness:
    def test_matches_batch_witness_checking(self):
        history = synthetic_history(300, n_processes=4, seed=17,
                                    pending_mutations=0)
        batch = check_with_witness(history, _invocation_witness(history),
                                   model="rsc", spec=RegisterSpec())
        assert batch.satisfied
        checker = StreamingWitnessChecker(_invocation_witness, model="rsc",
                                          spec=RegisterSpec(), min_epoch_ops=8)
        report = stream_history(history, "rsc", checker=checker)
        assert report.satisfied and report.epochs > 1

    def test_detects_cross_epoch_staleness(self):
        reset_op_ids()
        history = _history([
            Operation.write("P1", "x", 1, invoked_at=0, responded_at=1),
            Operation.write("P1", "x", 2, invoked_at=2, responded_at=3),
            Operation.read("P2", "x", 1, invoked_at=10, responded_at=11),
        ])
        checker = StreamingWitnessChecker(_invocation_witness, model="rsc",
                                          spec=RegisterSpec(), min_epoch_ops=1)
        report = stream_history(history, "rsc", checker=checker)
        assert not report.satisfied
        assert report.first_violation.index > 0   # localized to a later epoch

    def test_bounded_memory_via_epoch_eviction(self):
        """After each cut the checker retains only the fresh segment: the
        peak segment size stays far below the history size."""
        n = 10_000
        history = synthetic_history(n, n_processes=8, seed=23,
                                    pending_mutations=0)
        checker = StreamingWitnessChecker(_invocation_witness, model="rsc",
                                          spec=RegisterSpec(),
                                          min_epoch_ops=64)
        report = stream_history(history, "rsc", checker=checker)
        assert report.satisfied
        assert report.epochs > 4
        assert report.max_segment_ops < n / 2
        # Eviction: nothing of the checked epochs is retained afterwards.
        assert len(checker._stream.current_history) == 0


# --------------------------------------------------------------------------- #
# Monotone appends on the order structures
# --------------------------------------------------------------------------- #
class TestIncrementalOrders:
    @pytest.mark.parametrize("seed", range(5))
    def test_causal_append_equals_rebuild(self, seed):
        history = synthetic_history(50, n_processes=3, n_keys=4, seed=seed)
        ops = history.operations()
        grown = History()
        incremental = CausalOrder(grown)
        for op in sorted(ops, key=lambda o: (o.responded_at
                                             if o.responded_at is not None
                                             else float("inf"), o.op_id)):
            grown.add(op)
            incremental.append(op)
        batch = CausalOrder(grown)
        assert sorted(incremental.edges()) == sorted(batch.edges())

    def test_causal_append_handles_unhashable_values(self):
        """Regression: reads-from edges for unhashable (e.g. list) values
        must not be dropped by the incremental path — the batch build finds
        them with a linear scan."""
        reset_op_ids()
        w = Operation.write("P1", "x", [1, 2], invoked_at=0, responded_at=1)
        r = Operation.read("P2", "x", [1, 2], invoked_at=2, responded_at=3)
        grown = History()
        incremental = CausalOrder(grown)
        for op in (w, r):
            grown.add(op)
            incremental.append(op)
        batch = CausalOrder(grown)
        assert sorted(incremental.edges()) == sorted(batch.edges())
        assert (w.op_id, r.op_id) in incremental.edges()
        # Reader before writer: parked and resolved on the writer's arrival.
        reset_op_ids()
        w2 = Operation.write("P1", "y", [3], invoked_at=5, responded_at=9)
        r2 = Operation.read("P2", "y", [3], invoked_at=6, responded_at=7)
        grown2 = History()
        incremental2 = CausalOrder(grown2)
        for op in (r2, w2):     # completion order: reader first
            grown2.add(op)
            incremental2.append(op)
        assert (w2.op_id, r2.op_id) in incremental2.edges()

    def test_causal_append_edge(self):
        reset_op_ids()
        a = Operation.write("P1", "x", 1, invoked_at=0, responded_at=1)
        b = Operation.read("P2", "x", 1, invoked_at=2, responded_at=3)
        history = _history([a, b])
        order = CausalOrder(history)
        history.add_message_edge(a, b)
        order.append_edge(a, b)
        assert order.precedes(a, b)

    def test_realtime_index_append(self):
        reset_op_ids()
        ops = [Operation.write("P1", "x", i, invoked_at=i * 2,
                               responded_at=i * 2 + 1) for i in range(5)]
        full = RealTimeIndex(ops)
        grown = RealTimeIndex(ops[:2])
        for op in ops[2:]:
            grown.append(op)
        for a in ops:
            for b in ops:
                assert grown.precedes(a, b) == full.precedes(a, b)

    def test_history_incremental_caches_stay_correct(self):
        reset_op_ids()
        history = History()
        w = Operation.write("P1", "x", "v1", invoked_at=0, responded_at=1)
        history.add(w)
        # Force-build both caches, then append more and re-query.
        assert history.by_process("P1") == [w]
        assert history.writers_of("x", "v1") == [w]
        early = Operation.write("P1", "x", "v0", invoked_at=-1,
                                responded_at=-0.5)
        w2 = Operation.write("P2", "x", "v2", invoked_at=2, responded_at=3)
        history.add(early)
        history.add(w2)
        assert [op.op_id for op in history.by_process("P1")] == \
            [early.op_id, w.op_id]     # insort kept invocation order
        assert history.writers_of("x", "v2") == [w2]
        fresh = History(history.operations())
        assert [op.op_id for op in fresh.by_process("P1")] == \
            [op.op_id for op in history.by_process("P1")]
