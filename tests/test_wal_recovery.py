"""WriteAheadLog durability and crash-recovery determinism.

The chaos contract: every state transition a node acknowledged is on disk
before the acknowledgement, so a kill -9 at *any* instant followed by a
restart must reproduce exactly the pre-crash durable state.  The property
tests below kill a Gryff replica and a Spanner shard leader at
hypothesis-chosen points of a live workload and compare snapshots.
"""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.engine import _gryff_snapshot, _spanner_snapshot
from repro.gryff.cluster import GryffCluster
from repro.gryff.config import GryffConfig
from repro.spanner.cluster import SpannerCluster
from repro.spanner.config import SpannerConfig, Variant
from repro.storage.wal import WriteAheadLog


# --------------------------------------------------------------------------- #
# WriteAheadLog unit behaviour
# --------------------------------------------------------------------------- #
class TestWriteAheadLog:
    def test_append_stamps_sequence_and_recover_replays(self, tmp_path):
        path = str(tmp_path / "node.wal")
        wal = WriteAheadLog(path)
        wal.append({"kind": "apply", "key": "x", "value": 1})
        wal.append({"kind": "apply", "key": "y", "value": 2})
        wal.close()

        snapshot = WriteAheadLog(path).recover()
        assert snapshot.state is None and not snapshot.torn
        assert [r["seq"] for r in snapshot.records] == [1, 2]
        assert snapshot.records[0]["key"] == "x"

    def test_appends_after_close_vanish(self, tmp_path):
        """close() models SIGKILL: a dead process's writes never hit disk."""
        path = str(tmp_path / "node.wal")
        wal = WriteAheadLog(path)
        wal.append({"kind": "apply", "key": "x"})
        wal.close()
        wal.append({"kind": "apply", "key": "ghost"})
        snapshot = WriteAheadLog(path).recover()
        assert [r["key"] for r in snapshot.records] == ["x"]

    def test_checkpoint_truncates_log_and_recovers_state(self, tmp_path):
        path = str(tmp_path / "node.wal")
        wal = WriteAheadLog(path)
        for i in range(5):
            wal.append({"kind": "apply", "i": i})
        wal.checkpoint({"registers": {"x": 5}})
        wal.append({"kind": "apply", "i": 99})
        wal.close()

        snapshot = WriteAheadLog(path).recover()
        assert snapshot.state == {"registers": {"x": 5}}
        # Only the post-checkpoint record survives; seq keeps counting.
        assert [r["i"] for r in snapshot.records] == [99]
        assert snapshot.records[0]["seq"] == 6

    def test_crash_between_checkpoint_replace_and_truncate(self, tmp_path):
        """A checkpoint that landed while the old log survived: replay must
        filter records the checkpoint already covers, by sequence number."""
        path = str(tmp_path / "node.wal")
        wal = WriteAheadLog(path)
        for i in range(4):
            wal.append({"kind": "apply", "i": i})
        wal.close()
        # Forge the crash ordering: checkpoint covering seq <= 2 exists, but
        # the log was never truncated.
        with open(path + ".ckpt", "w", encoding="utf-8") as handle:
            json.dump({"seq": 2, "state": {"upto": 2}}, handle)

        snapshot = WriteAheadLog(path).recover()
        assert snapshot.state == {"upto": 2}
        assert [r["i"] for r in snapshot.records] == [2, 3]

    def test_torn_final_record_is_discarded_with_a_warning(self, tmp_path):
        path = str(tmp_path / "node.wal")
        wal = WriteAheadLog(path)
        wal.append({"kind": "apply", "i": 0})
        wal.append({"kind": "apply", "i": 1})
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "apply", "i": 2, "se')   # crash mid-write

        with pytest.warns(RuntimeWarning, match="torn record"):
            snapshot = WriteAheadLog(path).recover()
        assert snapshot.torn
        assert [r["i"] for r in snapshot.records] == [0, 1]

    def test_unreadable_checkpoint_falls_back_to_the_log(self, tmp_path):
        path = str(tmp_path / "node.wal")
        wal = WriteAheadLog(path)
        wal.append({"kind": "apply", "i": 0})
        wal.close()
        with open(path + ".ckpt", "w", encoding="utf-8") as handle:
            handle.write("not json")

        with pytest.warns(RuntimeWarning, match="unreadable checkpoint"):
            snapshot = WriteAheadLog(path).recover()
        assert snapshot.state is None
        assert [r["i"] for r in snapshot.records] == [0]

    def test_maybe_checkpoint_fires_on_the_configured_cadence(self, tmp_path):
        path = str(tmp_path / "node.wal")
        wal = WriteAheadLog(path, checkpoint_every=3)
        built = []

        def state():
            built.append(wal.seq)
            return {"at": wal.seq}

        for _ in range(2):
            wal.append({"kind": "apply"})
            assert not wal.maybe_checkpoint(state)
        wal.append({"kind": "apply"})
        assert wal.maybe_checkpoint(state)
        # state_fn only runs when a checkpoint is actually due.
        assert built == [3]
        wal.close()
        snapshot = WriteAheadLog(path).recover()
        assert snapshot.state == {"at": 3}
        assert snapshot.records == []


# --------------------------------------------------------------------------- #
# Recovery determinism: kill -9 at random points of a live workload
# --------------------------------------------------------------------------- #
def _roundtrips(snapshot):
    """Durable state must survive a JSON roundtrip exactly."""
    return json.loads(json.dumps(snapshot)) is not None


@settings(max_examples=6, deadline=None)
@given(kill_at=st.floats(min_value=100.0, max_value=2_000.0),
       seed=st.integers(min_value=0, max_value=4))
def test_gryff_replica_recovery_matches_precrash_state(kill_at, seed):
    """Kill -9 replica2 at an arbitrary instant mid-load; the restarted
    replica's WAL-recovered registers equal the pre-crash durable state."""
    with tempfile.TemporaryDirectory() as wal_dir:
        cluster = GryffCluster(GryffConfig(seed=seed), wal_dir=wal_dir)
        client = cluster.new_client("CA")

        def load():
            for i in range(25):
                yield from client.write(f"k{i % 5}", f"v{i}")

        pre_crash = {}

        def nemesis():
            yield cluster.env.timeout(kill_at)
            replica = cluster.crash_replica("replica2")
            pre_crash.update(_gryff_snapshot(replica))

        cluster.spawn(load())
        cluster.spawn(nemesis())
        cluster.run()

        restarted = cluster.restart_replica("replica2")
        assert _gryff_snapshot(restarted) == pre_crash
        assert _roundtrips(_gryff_snapshot(restarted))


@settings(max_examples=6, deadline=None)
@given(kill_at=st.floats(min_value=20.0, max_value=400.0),
       seed=st.integers(min_value=0, max_value=4))
def test_spanner_leader_recovery_matches_precrash_state(kill_at, seed):
    """Kill -9 a shard leader mid-2PC traffic; recovery replays the WAL to
    exactly the committed versions the leader had acknowledged."""
    with tempfile.TemporaryDirectory() as wal_dir:
        config = SpannerConfig(variant=Variant.SPANNER_RSS, num_shards=2,
                               seed=seed)
        cluster = SpannerCluster(config, wal_dir=wal_dir)
        client = cluster.new_client("CA")

        def load():
            for i in range(12):
                key = f"k{i}"
                yield from client.read_write_transaction(
                    [], lambda _reads, key=key, i=i: {key: i})

        pre_crash = {}

        def nemesis():
            yield cluster.env.timeout(kill_at)
            shard = cluster.crash_shard("shard1")
            pre_crash.update(_spanner_snapshot(shard))

        cluster.spawn(load())
        cluster.spawn(nemesis())
        cluster.run()

        restarted = cluster.restart_shard("shard1")
        assert _spanner_snapshot(restarted) == pre_crash


def test_gryff_recovered_replica_serves_recovered_values(tmp_path):
    """After crash + restart the recovered replica participates again and the
    recovered value is readable (quorums include the restarted node)."""
    cluster = GryffCluster(GryffConfig(seed=3), wal_dir=str(tmp_path))
    writer = cluster.new_client("CA")
    reader = cluster.new_client("VA")
    out = {}

    def scenario():
        yield from writer.write("k", "before-crash")
        crashed = cluster.crash_replica("replica1")
        assert crashed.wal.closed
        cluster.restart_replica("replica1")
        out["value"] = yield from reader.read("k")

    cluster.spawn(scenario())
    cluster.run()
    assert out["value"] == "before-crash"
    # The restarted instance recovered the register from its WAL.
    recovered = _gryff_snapshot(cluster.replicas["replica1"])
    assert recovered["k"][0] == "before-crash"
