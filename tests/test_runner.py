"""Tests for the parallel experiment orchestrator (:mod:`repro.bench.runner`).

Covers spec canonicalization, deterministic seed derivation, serial/parallel
result equivalence, deterministic result ordering, and the resume cache
(interrupted sweeps pick up where they stopped).
"""

import json
import os

import pytest

from repro.bench.runner import (
    ParallelRunner,
    SweepSpec,
    TrialSpec,
    default_jobs,
    derive_seed,
    register_trial,
    resolve_trial,
    run_sweep,
)


# --------------------------------------------------------------------- #
# Spec canonicalization and hashing
# --------------------------------------------------------------------- #
def test_trial_spec_key_is_order_insensitive():
    a = TrialSpec.make("table1_model", {"x": 1, "y": [1, 2]}, seed=3)
    b = TrialSpec.make("table1_model", {"y": [1, 2], "x": 1}, seed=3)
    assert a.key() == b.key()
    assert a.param_dict() == {"x": 1, "y": [1, 2]}


def test_trial_spec_key_depends_on_everything():
    base = TrialSpec.make("table1_model", {"x": 1}, seed=3)
    assert base.key() != TrialSpec.make("table1_model", {"x": 2}, seed=3).key()
    assert base.key() != TrialSpec.make("table1_model", {"x": 1}, seed=4).key()
    assert base.key() != TrialSpec.make("spanner_load", {"x": 1}, seed=3).key()


def test_trial_spec_rejects_unserializable_params():
    with pytest.raises(TypeError):
        TrialSpec.make("table1_model", {"fn": object()})


def test_nested_params_round_trip():
    params = {"a": {"b": [1, 2, {"c": True}]}, "d": None}
    spec = TrialSpec.make("table1_model", params)
    assert spec.param_dict() == params


def test_ambiguous_params_round_trip_without_corruption():
    # Regression: lists shaped like (str, value) pairs must stay lists, and
    # empty dicts must stay dicts, through the freeze/thaw round trip.
    params = {"pairs": [["a", 1], ["b", 2]], "empty": {}, "unit": [["x", 3]]}
    spec = TrialSpec.make("table1_model", params)
    assert spec.param_dict() == params


def test_derive_seed_is_stable_and_spread():
    assert derive_seed(1, "spanner", 4) == derive_seed(1, "spanner", 4)
    seeds = {derive_seed(1, variant, count)
             for variant in ("spanner", "spanner-rss")
             for count in (2, 4, 8, 16)}
    assert len(seeds) == 8
    assert all(0 <= seed < 2 ** 63 for seed in seeds)


def test_grid_expansion_order_and_seeds():
    sweep = SweepSpec.grid("g", "table1_model",
                           axes={"a": [1, 2], "b": ["x", "y"]},
                           base={"c": 0}, seed=9)
    combos = [(t.param_dict()["a"], t.param_dict()["b"]) for t in sweep.trials]
    assert combos == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
    assert all(t.seed == 9 for t in sweep.trials)
    assert all(t.param_dict()["c"] == 0 for t in sweep.trials)
    derived = SweepSpec.grid("g", "table1_model", axes={"a": [1, 2]},
                             seed=9, derive_seeds=True)
    assert derived.trials[0].seed != derived.trials[1].seed


def test_resolve_trial_alias_and_dotted_path():
    assert resolve_trial("table1_model") is resolve_trial(
        "repro.bench.table1:model_trial")
    with pytest.raises(KeyError):
        resolve_trial("no_such_trial")


def test_register_trial_requires_dotted_path():
    with pytest.raises(ValueError):
        register_trial("bad", "not-a-path")


def test_default_jobs_env_override(monkeypatch):
    cores = os.cpu_count() or 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    # The default is clamped to the available cores (oversubscribing
    # CPU-bound trials only adds contention).
    if cores >= 3:
        assert default_jobs() == 3
    else:
        with pytest.warns(RuntimeWarning, match="clamping"):
            assert default_jobs() == cores
    monkeypatch.setenv("REPRO_JOBS", "1")
    assert default_jobs() == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert 1 <= default_jobs() <= cores


def test_default_jobs_clamps_env_to_cores(monkeypatch):
    cores = os.cpu_count() or 1
    monkeypatch.setenv("REPRO_JOBS", str(cores + 5))
    with pytest.warns(RuntimeWarning, match="clamping"):
        assert default_jobs() == cores


def test_explicit_jobs_oversubscription_warns():
    cores = os.cpu_count() or 1
    with pytest.warns(RuntimeWarning, match="exceeds"):
        runner = ParallelRunner(jobs=cores + 7)
    # Explicit requests are honored (only the default is clamped).
    assert runner.jobs == cores + 7


def test_jobs_at_or_below_cores_does_not_warn(recwarn):
    runner = ParallelRunner(jobs=1)
    assert runner.jobs == 1
    assert not [w for w in recwarn.list
                if issubclass(w.category, RuntimeWarning)]


# --------------------------------------------------------------------- #
# Determinism: serial vs parallel
# --------------------------------------------------------------------- #
def _tiny_load_sweep() -> SweepSpec:
    from repro.bench.spanner_experiments import figure6_sweep

    return figure6_sweep(client_counts=(1, 2), duration_ms=120.0,
                         num_shards=2, num_keys=200)


def test_sweep_results_identical_at_jobs_1_and_4():
    sweep = _tiny_load_sweep()
    serial = ParallelRunner(jobs=1).run(sweep)
    parallel = ParallelRunner(jobs=4).run(sweep)
    assert serial.jobs == 1 and parallel.jobs == 4
    assert len(serial.results) == len(sweep.trials) == 4
    # Aggregated results must be exactly equal, in the same trial order.
    assert serial.data() == parallel.data()
    # The parallel run really did cross process boundaries (pool of forked
    # or spawned workers), unless the pool collapsed to one worker.
    pids = {result.worker_pid for result in parallel.results}
    assert os.getpid() not in pids


def test_serial_runner_matches_direct_trial_calls():
    from repro.bench.runner import _execute_trial

    sweep = SweepSpec.grid("table1", "table1_model",
                           axes={"model": ["rss", "po_serializability"]})
    outcome = ParallelRunner(jobs=1).run(sweep)
    direct = [_execute_trial(spec)[0] for spec in sweep.trials]
    assert outcome.data() == direct


# --------------------------------------------------------------------- #
# Resume cache
# --------------------------------------------------------------------- #
def test_resume_reuses_cached_trials(tmp_path):
    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid("table1", "table1_model",
                           axes={"model": ["strict_serializability", "rss",
                                           "po_serializability"]})
    # Simulate a sweep interrupted after the first two trials: only they
    # reach the cache.
    partial = SweepSpec.of(sweep.name, sweep.trials[:2])
    first = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t").run(partial)
    assert first.cache_hits == 0 and first.cache_misses == 2

    resumed = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t").run(sweep)
    assert resumed.cache_hits == 2 and resumed.cache_misses == 1
    assert [r.cached for r in resumed.results] == [True, True, False]

    # Cached results are exactly what an uncached run computes.
    fresh = ParallelRunner(jobs=1).run(sweep)
    assert resumed.data() == fresh.data()

    # A third run is served entirely from the cache.
    third = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t").run(sweep)
    assert third.cache_hits == 3 and third.cache_misses == 0
    assert third.data() == fresh.data()


def test_cache_is_keyed_on_code_tag(tmp_path):
    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid("table1", "table1_model", axes={"model": ["rss"]})
    ParallelRunner(jobs=1, cache_dir=cache, code_tag="rev-a").run(sweep)
    other = ParallelRunner(jobs=1, cache_dir=cache, code_tag="rev-b").run(sweep)
    assert other.cache_hits == 0 and other.cache_misses == 1


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid("table1", "table1_model", axes={"model": ["rss"]})
    runner = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t")
    first = runner.run(sweep)
    path = runner._cache_path(sweep, sweep.trials[0])
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    again = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t").run(sweep)
    assert again.cache_hits == 0
    assert again.data() == first.data()


def test_cache_entry_is_json_with_metadata(tmp_path):
    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid("table1", "table1_model", axes={"model": ["rss"]},
                           seed=7)
    runner = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t")
    runner.run(sweep)
    path = runner._cache_path(sweep, sweep.trials[0])
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    assert entry["experiment"] == "table1_model"
    assert entry["params"] == {"model": "rss"}
    assert entry["seed"] == 7
    assert entry["code_tag"] == "t"
    assert "verdicts" in entry["data"]


def test_run_sweep_progress_callback():
    seen = []
    sweep = SweepSpec.grid("table1", "table1_model", axes={"model": ["rss"]})
    run_sweep(sweep, jobs=1,
              progress=lambda result, index, total: seen.append((index, total)))
    assert seen == [(0, 1)]


# --------------------------------------------------------------------- #
# Graceful shutdown on KeyboardInterrupt
# --------------------------------------------------------------------- #
def _cached_keys(cache_dir, sweep):
    directory = os.path.join(cache_dir, sweep.name)
    if not os.path.isdir(directory):
        return set()
    return {name.split(".")[0] for name in os.listdir(directory)
            if ".tmp." not in name}


def _tmp_files(cache_dir, sweep):
    directory = os.path.join(cache_dir, sweep.name)
    if not os.path.isdir(directory):
        return []
    return [name for name in os.listdir(directory) if ".tmp." in name]


def test_interrupt_mid_parallel_sweep_flushes_cache(tmp_path):
    """A KeyboardInterrupt mid-sweep must leave a clean, resumable cache."""
    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid(
        "table1", "table1_model",
        axes={"model": ["strict_serializability", "rss",
                        "po_serializability", "crdb"]})

    interrupted = {"count": 0}

    def interrupt_after_first(result, index, total):
        interrupted["count"] += 1
        if interrupted["count"] == 1:
            raise KeyboardInterrupt

    runner = ParallelRunner(jobs=2, cache_dir=cache, code_tag="t",
                            progress=interrupt_after_first)
    with pytest.raises(KeyboardInterrupt):
        runner.run(sweep)

    # At least the trial whose completion triggered the interrupt was
    # flushed, no half-written temp files survive, and a resumed run
    # completes from the cache without recomputing the flushed trials.
    flushed = _cached_keys(cache, sweep)
    assert flushed
    assert _tmp_files(cache, sweep) == []

    resumed = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t").run(sweep)
    assert resumed.cache_hits == len(flushed)
    assert resumed.cache_misses == len(sweep.trials) - len(flushed)
    fresh = ParallelRunner(jobs=1).run(sweep)
    assert resumed.data() == fresh.data()


def test_interrupt_mid_serial_sweep_keeps_finished_trials(tmp_path):
    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid("table1", "table1_model",
                           axes={"model": ["rss", "po_serializability",
                                           "crdb"]})
    calls = {"count": 0}

    def interrupt_after_second(result, index, total):
        calls["count"] += 1
        if calls["count"] == 2:
            raise KeyboardInterrupt

    runner = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t",
                            progress=interrupt_after_second)
    with pytest.raises(KeyboardInterrupt):
        runner.run(sweep)
    assert len(_cached_keys(cache, sweep)) == 2
    assert _tmp_files(cache, sweep) == []
    resumed = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t").run(sweep)
    assert resumed.cache_hits == 2 and resumed.cache_misses == 1


def test_remove_stale_tmp_only_touches_temp_files(tmp_path):
    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid("table1", "table1_model", axes={"model": ["rss"]})
    runner = ParallelRunner(jobs=1, cache_dir=cache, code_tag="t")
    runner.run(sweep)
    directory = os.path.join(cache, sweep.name)
    stale = os.path.join(directory, f"deadbeef.tmp.{os.getpid()}")
    foreign = os.path.join(directory, "cafe.tmp.99999")
    for path in (stale, foreign):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{half-written")
    runner._remove_stale_tmp(sweep)
    assert not os.path.exists(stale)
    # Another process's in-flight temp file is not ours to delete.
    assert os.path.exists(foreign)
    assert _cached_keys(cache, sweep)   # real entries untouched


def test_flush_completed_stores_unconsumed_futures(tmp_path):
    from concurrent.futures import Future

    cache = str(tmp_path / "cache")
    sweep = SweepSpec.grid("table1", "table1_model",
                           axes={"model": ["rss", "crdb"]})
    runner = ParallelRunner(jobs=2, cache_dir=cache, code_tag="t")
    results = [None, None]

    done = Future()
    done.set_result(({"verdicts": {}}, 0.01, 1234))
    failed = Future()
    failed.set_exception(RuntimeError("worker died"))
    runner._flush_completed(sweep, results, {done: 0, failed: 1})
    assert results[0] is not None and results[0].data == {"verdicts": {}}
    assert results[1] is None
    assert _cached_keys(cache, sweep) == {sweep.trials[0].key()}


# --------------------------------------------------------------------- #
# Figure drivers through the runner (tiny scale)
# --------------------------------------------------------------------- #
def test_figure6_experiment_parallel_matches_serial():
    from repro.bench.spanner_experiments import figure6_experiment

    kwargs = dict(client_counts=(1, 2), duration_ms=120.0, num_shards=2,
                  num_keys=200)
    assert (figure6_experiment(jobs=1, **kwargs)
            == figure6_experiment(jobs=2, **kwargs))


def test_figure7_experiment_resume_round_trip(tmp_path):
    from repro.bench.gryff_experiments import figure7_experiment

    kwargs = dict(write_ratios=(0.5,), duration_ms=300.0, num_clients=4)
    cache = str(tmp_path / "cache")
    fresh = figure7_experiment(0.1, jobs=1, **kwargs)
    first = figure7_experiment(0.1, jobs=1, cache_dir=cache, **kwargs)
    cached = figure7_experiment(0.1, jobs=1, cache_dir=cache, **kwargs)
    assert fresh == first == cached
