"""Migration plans, journal-based placement recovery, and the live
crash/recover path.

The central property (acceptance criterion of the fleet subsystem): a
kill -9 of the migration controller at *any* journal prefix recovers, via
:func:`~repro.fleet.migration.recover_placement`, to a placement in which
every key has exactly one owner — the pre-flip placement before the
``flipped`` record is durable, the post-flip placement after.  The
hypothesis test replays every prefix of synthetic journals written in the
controller's exact record format; the live test crashes a real controller
mid-copy under load and recovers its journal.
"""

import asyncio
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.migration import (
    MIGRATION_JOURNAL_SCHEMA,
    MigrationPlan,
    recover_placement,
)
from repro.fleet.ring import POINT_SPACE, PlacementMap
from repro.storage.wal import WriteAheadLog


class TestMigrationPlanParse:
    def test_split(self):
        plan = MigrationPlan.parse("800:split:0.25:g1")
        assert (plan.at_ms, plan.kind, plan.frac_lo, plan.frac_hi, plan.dst) \
            == (800.0, "split", 0.25, None, "g1")

    def test_merge(self):
        plan = MigrationPlan.parse("2000:merge:0.9:g0")
        assert plan.kind == "merge" and plan.dst == "g0"

    def test_move(self):
        plan = MigrationPlan.parse("100:move:0.25-0.375:g1")
        assert plan.kind == "move"
        assert (plan.frac_lo, plan.frac_hi) == (0.25, 0.375)

    def test_describe_round_trips(self):
        for text in ("800:split:0.25:g1", "2000:merge:0.9:g0",
                     "100:move:0.25-0.375:g1"):
            plan = MigrationPlan.parse(text)
            assert MigrationPlan.parse(plan.describe()) == plan

    @pytest.mark.parametrize("bad", [
        "800:split:0.25",                 # missing dst
        "800:split:0.25:g1:extra",        # too many fields
        "800:resize:0.25:g1",             # unknown kind
        "800:split:1.5:g1",               # fraction out of range
        "800:move:0.5:g1",                # move without lo-hi
        "800:move:0.5-0.25:g1",           # inverted range
        "800:move:0.5-1.25:g1",           # hi out of range
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            MigrationPlan.parse(bad)


class TestMigrationPlanResolve:
    def test_split_bisects_containing_range(self):
        placement = PlacementMap.build(["g0", "g1"])
        plan = MigrationPlan.parse("0:split:0.5:g1")
        lo, hi = plan.resolve(placement)
        point = int(0.5 * POINT_SPACE)
        containing = next(r for r in placement.ranges()
                          if r.contains(point))
        assert (lo, hi) == ((containing.lo + containing.hi) // 2,
                            containing.hi)

    def test_merge_takes_whole_range(self):
        placement = PlacementMap.build(["g0", "g1"])
        plan = MigrationPlan.parse("0:merge:0.5:g0")
        lo, hi = plan.resolve(placement)
        containing = next(r for r in placement.ranges()
                          if r.contains(int(0.5 * POINT_SPACE)))
        assert (lo, hi) == (containing.lo, containing.hi)

    def test_move_uses_explicit_fractions(self):
        placement = PlacementMap.build(["g0", "g1"])
        plan = MigrationPlan.parse("0:move:0.25-0.5:g1")
        assert plan.resolve(placement) == (POINT_SPACE // 4, POINT_SPACE // 2)

    def test_too_narrow_split_rejected(self):
        from repro.fleet.ring import PlacementRange

        # [0, 1) is one point wide: bisecting it would produce an empty half.
        narrow = PlacementMap([PlacementRange(0, 1, "g0"),
                               PlacementRange(1, POINT_SPACE, "g1")])
        plan = MigrationPlan.parse("0:split:0.0:g1")
        with pytest.raises(ValueError, match="too narrow"):
            plan.resolve(narrow)


# --------------------------------------------------------------------------- #
# Journal-prefix recovery property
# --------------------------------------------------------------------------- #
def _journal_records(mig_id, placement, lo, hi, dst):
    """One migration's journal records, in the controller's exact shapes."""
    pre = placement.to_dict()
    placement.move(lo, hi, dst)
    post = placement.to_dict()
    return [
        {"schema": MIGRATION_JOURNAL_SCHEMA, "kind": "begin",
         "mig_id": mig_id, "lo": lo, "hi": hi, "dst": dst,
         "placement": pre},
        {"kind": "mirror_on", "mig_id": mig_id},
        {"kind": "copied", "mig_id": mig_id, "keys": 7},
        {"kind": "fenced", "mig_id": mig_id},
        {"kind": "flipped", "mig_id": mig_id, "placement": post},
        {"kind": "purged", "mig_id": mig_id, "removed": 7},
        {"kind": "done", "mig_id": mig_id},
    ]


_slice = st.tuples(
    st.integers(min_value=0, max_value=POINT_SPACE - 2),
    st.integers(min_value=1, max_value=POINT_SPACE),
    st.sampled_from(["g0", "g1", "g2"]),
).map(lambda t: (t[0], min(POINT_SPACE, max(t[0] + 1, t[1])), t[2]))


class TestRecoverPlacement:
    @settings(max_examples=25, deadline=None)
    @given(slices=st.lists(_slice, min_size=1, max_size=3),
           seed=st.integers(min_value=0, max_value=99))
    def test_every_journal_prefix_recovers_single_owner(
            self, tmp_path_factory, slices, seed):
        """kill -9 between any two journal appends -> valid placement."""
        initial = PlacementMap.build(["g0", "g1", "g2"], seed=seed)
        rolling = initial.copy()
        records = []
        for index, (lo, hi, dst) in enumerate(slices):
            records.extend(_journal_records(f"mig{index + 1}", rolling,
                                            lo, hi, dst))
        base = tmp_path_factory.mktemp("journal")
        for cut in range(len(records) + 1):
            path = str(base / f"prefix{cut}.journal")
            wal = WriteAheadLog(path)
            for record in records[:cut]:
                wal.append(record)
            wal.close()
            placement, unfinished = recover_placement(path, initial)
            placement.validate()          # exactly-one-owner tiling
            # Recovery is all-or-nothing per migration: the placement is
            # either the snapshot before a migration or after it, and the
            # in-flight one (if any) is reported unfinished.
            done = sum(1 for r in records[:cut] if r["kind"] == "done")
            flipped = sum(1 for r in records[:cut] if r["kind"] == "flipped")
            expected = initial.copy()
            for lo, hi, dst in slices[:flipped]:
                expected.move(lo, hi, dst)
            assert placement.to_dict() == expected.to_dict()
            begun = sum(1 for r in records[:cut] if r["kind"] == "begin")
            if begun > done:
                assert unfinished == f"mig{begun}"
            else:
                assert unfinished is None

    def test_missing_journal_returns_initial(self, tmp_path):
        initial = PlacementMap.build(["g0", "g1"])
        placement, unfinished = recover_placement(
            str(tmp_path / "absent.journal"), initial)
        assert placement.to_dict() == initial.to_dict()
        assert unfinished is None

    def test_recovery_drops_transient_state(self, tmp_path):
        initial = PlacementMap.build(["g0", "g1"])
        initial.freeze(0, 100)
        initial.set_mirror(0, 100, "g1")
        placement, _ = recover_placement(
            str(tmp_path / "absent.journal"), initial)
        assert not placement.has_frozen() and not placement.has_mirrors()


# --------------------------------------------------------------------------- #
# Live crash/recover (real controller, real journal, load running)
# --------------------------------------------------------------------------- #
class TestLiveCrashRecovery:
    def test_mid_copy_crash_recovers_preflip_and_load_survives(
            self, tmp_path):
        from repro.fleet.spec import FleetSpec
        from repro.net.cluster import LiveProcess
        from repro.net.load import run_load

        journal = str(tmp_path / "crash.journal")

        async def scenario():
            fleet = FleetSpec.build(protocol="gryff-rsc", num_groups=2,
                                    base_port=0, placement_seed=3)
            initial = fleet.placement.copy()
            server = LiveProcess(fleet.merged_spec(),
                                 node_configs=fleet.node_configs())
            await server.start()
            try:
                summary = await run_load(
                    fleet, num_clients=2, duration_ms=900.0, seed=21,
                    check_inline=True, check_min_epoch_ops=16,
                    migrations=[MigrationPlan.parse("300:split:0.5:g1")],
                    migration_journal=journal,
                    migration_crash_phase="mid_copy")
            finally:
                await server.stop()
            return summary, initial

        summary, initial = asyncio.run(scenario())
        assert summary["ops"] > 0
        assert summary["migration"]["crashed"] is True
        assert summary["check"]["satisfied"] is True
        # The controller died with the copy half done: the journal must
        # recover the untouched pre-flip placement, flagged unfinished.
        placement, unfinished = recover_placement(journal, initial)
        assert unfinished == "mig1"
        assert placement.version == initial.version
        assert placement.to_dict() == initial.to_dict()
        assert os.path.exists(journal)
