"""The `repro monitor` correctness sidecar: clean runs, alerting on
out-of-window violations, fault-window excusal, its /metrics endpoint, and
the follow loop's idle backoff."""

import asyncio
import json
import socket

import pytest

from repro.cli import main as cli_main
from repro.core.events import Operation, reset_op_ids
from repro.net.recorder import RecordingHistory, TraceWriter, follow_trace_records
from repro.obs import MetricsRegistry, scrape
from repro.obs.monitor import ALERT_SCHEMA, run_monitor


# --------------------------------------------------------------------------- #
# Trace fixtures
# --------------------------------------------------------------------------- #
def _write_clean_trace(path, ops=10):
    """A trivially linearizable single-writer trace with quiescent gaps."""
    reset_op_ids()
    writer = TraceWriter(path, meta={"protocol": "gryff-rsc"})
    history = RecordingHistory(writer)
    now = 0.0
    for i in range(ops):
        history.note_invocation("P1", now)
        history.add(Operation.write("P1", "x", f"v{i}", invoked_at=now,
                                    responded_at=now + 1.0,
                                    carstamp=(i + 1, 0, "P1")))
        now += 2.0
    writer.close()


def _write_violating_trace(path):
    """P2 reads a stale value long after a newer write completed — a clear
    RSC violation, landing in its own epoch with min_epoch_ops=1."""
    reset_op_ids()
    writer = TraceWriter(path, meta={"protocol": "gryff-rsc"})
    history = RecordingHistory(writer)
    history.note_invocation("P1", 0.0)
    history.add(Operation.write("P1", "x", "v1", invoked_at=0.0,
                                responded_at=1.0, carstamp=(1, 0, "P1")))
    history.note_invocation("P1", 2.0)
    history.add(Operation.write("P1", "x", "v2", invoked_at=2.0,
                                responded_at=3.0, carstamp=(2, 0, "P1")))
    history.note_invocation("P2", 10.0)
    history.add(Operation.read("P2", "x", "v1", invoked_at=10.0,
                               responded_at=11.0, carstamp=(1, 0, "P1")))
    writer.close()


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# --------------------------------------------------------------------------- #
# run_monitor
# --------------------------------------------------------------------------- #
class TestRunMonitor:
    def test_clean_trace_exits_zero(self, tmp_path):
        path = str(tmp_path / "clean.jsonl")
        _write_clean_trace(path)
        report = run_monitor(path, min_epoch_ops=3, idle_timeout=0)
        assert report.exit_code == 0
        assert report.satisfied and report.alert is None
        assert report.protocol == "gryff-rsc" and report.model == "rsc"
        assert report.ops_checked == 10 and report.epochs > 1
        assert report.violations == []

    def test_out_of_window_violation_alerts_within_two_epochs(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        _write_violating_trace(path)
        alert_file = str(tmp_path / "alerts.jsonl")
        verdicts = []
        report = run_monitor(path, min_epoch_ops=1, idle_timeout=0,
                             alert_path=alert_file,
                             on_verdict=verdicts.append)
        assert report.exit_code == 1
        assert not report.satisfied
        assert report.violations_outside_windows
        # Detection latency: the monitor stops on the epoch containing the
        # violating read — within 2 epochs of the stale read being written.
        alert = report.alert
        assert alert is not None
        violating_index = alert["epoch"]["index"]
        assert violating_index <= verdicts[-1].index
        assert report.epochs - violating_index <= 2
        # Structured alert record: schema, epoch detail, durable copy.
        assert alert["schema"] == ALERT_SCHEMA
        assert alert["type"] == "alert"
        assert alert["protocol"] == "gryff-rsc"
        assert alert["epoch"]["ops"] >= 1 and alert["epoch"]["reason"]
        assert alert["epoch"]["op_ids"]
        with open(alert_file) as handle:
            saved = [json.loads(line) for line in handle]
        assert saved == [alert]

    def test_violation_inside_fault_window_is_excused(self, tmp_path):
        path = str(tmp_path / "excused.jsonl")
        _write_violating_trace(path)
        # Windows are trace-relative, anchored at the first timestamped
        # record (invoked_at=0.0 here): cover the whole run.
        report = run_monitor(path, min_epoch_ops=1, idle_timeout=0,
                             fault_windows=[(0.0, 60_000.0)])
        assert report.exit_code == 0
        assert report.alert is None
        assert report.violations
        assert report.violations_outside_windows == []

    def test_window_before_the_violation_still_alerts(self, tmp_path):
        """A fault window that closes before the violating epoch begins
        does not excuse it (the final epoch is open-ended, so the window
        must end before the epoch starts to be clearly disjoint — the
        same overlap rule the chaos engine judges with)."""
        path = str(tmp_path / "miss.jsonl")
        _write_violating_trace(path)
        report = run_monitor(path, min_epoch_ops=1, idle_timeout=0,
                             fault_windows=[(0.0, 0.5)])
        assert report.exit_code == 1 and report.alert is not None

    def test_empty_trace_is_exit_two(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        report = run_monitor(path, idle_timeout=0)
        assert report.exit_code == 2

    def test_metrics_endpoint_reports_verdict_state(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        _write_violating_trace(path)
        port = _free_port()
        registry = MetricsRegistry()
        scraped = []

        def on_verdict(verdict):
            if not scraped:
                scraped.append(asyncio.run(scrape("127.0.0.1", port)))

        report = run_monitor(path, min_epoch_ops=1, idle_timeout=0,
                             metrics_port=port, registry=registry,
                             on_verdict=on_verdict)
        assert report.exit_code == 1
        # Scraped live, mid-run, from the monitor's own endpoint.
        assert scraped and "repro_monitor_records_total" in scraped[0]
        assert "repro_monitor_following 1" in scraped[0]
        # Final registry state: the alert counted, the violating epoch and
        # last-verdict gauges point at the failure.
        assert registry.get("repro_monitor_alerts_total").value() == 1
        assert registry.get("repro_checker_last_verdict_ok").value() == 0
        violating = registry.get("repro_checker_violating_epoch").value()
        assert violating == report.alert["epoch"]["index"]
        assert registry.get("repro_checker_lag_seconds").value() is not None

    def test_report_round_trips_to_json(self, tmp_path):
        path = str(tmp_path / "clean.jsonl")
        _write_clean_trace(path, ops=4)
        report = run_monitor(path, min_epoch_ops=2, idle_timeout=0)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["satisfied"] is True
        assert payload["exit_code"] == 0


# --------------------------------------------------------------------------- #
# No false alarms on chaos traces
# --------------------------------------------------------------------------- #
class TestMonitorOnChaosTraces:
    @pytest.mark.parametrize("name", ["replica-crash-restart",
                                      "clock-skew-sweep"])
    def test_catalog_scenario_traces_stay_clean(self, tmp_path, name):
        """The sidecar must not page on expected chaos: a catalog scenario's
        trace, judged with that scenario's own fault windows, exits 0.
        (clock-skew-sweep genuinely violates inside its window — the
        monitor counts it but must not alert.  The full 8-scenario sweep
        runs in the chaos-smoke CI job.)"""
        from repro.chaos import get_scenario, run_scenario

        scenario = get_scenario(name)
        chaos = run_scenario(scenario, backend="sim",
                             trace_dir=str(tmp_path))
        assert chaos.ok, chaos.describe()
        report = run_monitor(str(tmp_path / "trace.jsonl"), idle_timeout=0,
                             fault_windows=scenario.fault_windows())
        assert report.exit_code == 0, report.to_dict()
        assert report.alert is None
        assert report.violations_outside_windows == []


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestMonitorCli:
    def test_clean_run_exits_zero_and_writes_json(self, tmp_path, capsys):
        path = str(tmp_path / "clean.jsonl")
        _write_clean_trace(path)
        out_json = str(tmp_path / "report.json")
        code = cli_main(["monitor", path, "--idle-timeout", "0",
                         "--min-epoch-ops", "3", "--json", out_json])
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out
        with open(out_json) as handle:
            assert json.load(handle)["exit_code"] == 0

    def test_violation_exits_one_with_alert(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        _write_violating_trace(path)
        alert_file = str(tmp_path / "alerts.jsonl")
        code = cli_main(["monitor", path, "--idle-timeout", "0",
                         "--min-epoch-ops", "1",
                         "--alert-file", alert_file])
        captured = capsys.readouterr()
        assert code == 1
        assert "ALERT" in captured.out
        assert "repro-monitor ALERT" in captured.err
        with open(alert_file) as handle:
            assert json.loads(handle.readline())["schema"] == ALERT_SCHEMA

    def test_fault_window_flag_excuses_the_violation(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        _write_violating_trace(path)
        code = cli_main(["monitor", path, "--idle-timeout", "0",
                         "--min-epoch-ops", "1",
                         "--fault-window", "0:60000"])
        assert code == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_scenario_windows_are_loaded_from_the_catalog(self, tmp_path,
                                                          capsys):
        path = str(tmp_path / "bad.jsonl")
        _write_violating_trace(path)
        code = cli_main(["monitor", path, "--idle-timeout", "0",
                         "--min-epoch-ops", "1",
                         "--scenario", "no-such-scenario"])
        assert code == 2
        assert "replica-crash-restart" in capsys.readouterr().err

    def test_bad_fault_window_is_exit_two(self, tmp_path, capsys):
        path = str(tmp_path / "clean.jsonl")
        _write_clean_trace(path, ops=2)
        code = cli_main(["monitor", path, "--idle-timeout", "0",
                         "--fault-window", "oops"])
        assert code == 2
        assert "bad --fault-window" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Keeping up with the v2 wire: the serial checker must fold records faster
# than the live runtime can put operations on the wire, so a monitor tailing
# a high-rate binary-codec run drains its backlog instead of falling behind.
# --------------------------------------------------------------------------- #
class TestMonitorKeepsUp:
    def test_high_rate_trace_lag_stays_bounded(self, tmp_path):
        """4000 ops in one sitting — the shape a ``repro load --rate``
        open-loop run over the binary codec writes.  The monitor's record
        throughput must clear the measured live wire capacity (~4k ops/s,
        ~8k records/s on the reference 1-core box; see BENCH_perf.json
        ``live``) and ``repro_checker_lag_seconds`` must return to zero
        once the tail is consumed.  The bound is loose for CI noise — the
        measured fold rate is ~70k records/s."""
        import time

        path = str(tmp_path / "hot.jsonl")
        ops = 4_000
        _write_clean_trace(path, ops=ops)
        registry = MetricsRegistry()
        verdicts = []

        def on_verdict(verdict):
            verdicts.append(verdict.satisfied)

        start = time.perf_counter()
        report = run_monitor(path, min_epoch_ops=64, idle_timeout=0,
                             registry=registry, on_verdict=on_verdict)
        wall = time.perf_counter() - start
        assert report.exit_code == 0
        assert report.records >= ops          # invocation + op per write
        assert len(verdicts) > 10 and all(verdicts)
        throughput = report.records / wall
        assert throughput > 10_000, \
            f"monitor folded only {throughput:,.0f} records/s"
        # Every record is covered by a closed epoch: no residual lag.
        assert registry.get("repro_checker_lag_seconds").value() == 0.0


# --------------------------------------------------------------------------- #
# Follow-loop idle backoff (satellite: configurable poll + backoff)
# --------------------------------------------------------------------------- #
class TestFollowBackoff:
    def test_idle_polls_back_off_exponentially_to_the_cap(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_clean_trace(path, ops=2)
        sleeps = []
        list(follow_trace_records(path, poll_interval=0.1, idle_timeout=2.0,
                                  max_poll_interval=0.8, backoff=2.0,
                                  _sleep=sleeps.append))
        # 0.1, 0.2, 0.4, 0.8, 0.8, ... — doubling, then pinned at the cap.
        assert sleeps[:4] == [0.1, 0.2, 0.4, 0.8]
        assert all(delay == 0.8 for delay in sleeps[3:])

    def test_new_data_resets_the_backoff(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_clean_trace(path, ops=1)
        sleeps = []
        appended = []

        def sleep(delay):
            sleeps.append(delay)
            if len(sleeps) == 3 and not appended:
                # Back off twice, then new data arrives mid-follow.
                with open(path, "a") as handle:
                    handle.write(json.dumps(
                        {"type": "inv", "process": "P9",
                         "invoked_at": 99.0}) + "\n")
                appended.append(True)

        records = list(follow_trace_records(
            path, poll_interval=0.1, idle_timeout=0.5,
            max_poll_interval=5.0, backoff=2.0, _sleep=sleep))
        assert any(r.get("process") == "P9" for r in records)
        reset_at = sleeps.index(0.1, 1)
        assert reset_at > 1                     # it had started backing off
        assert sleeps[reset_at - 1] > 0.1       # ...and came back down

    def test_backoff_parameters_are_validated(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with pytest.raises(ValueError, match="max_poll_interval"):
            next(iter(follow_trace_records(path, poll_interval=1.0,
                                           max_poll_interval=0.5)))
        with pytest.raises(ValueError, match="backoff"):
            next(iter(follow_trace_records(path, max_poll_interval=2.0,
                                           backoff=0.5)))

    def test_default_interval_behavior_is_unchanged(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_clean_trace(path, ops=1)
        sleeps = []
        list(follow_trace_records(path, poll_interval=0.25, idle_timeout=1.0,
                                  _sleep=sleeps.append))
        assert sleeps and all(delay == 0.25 for delay in sleeps)
