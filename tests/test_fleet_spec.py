"""Fleet topology validation (`repro-fleet/1`) and the satellite
cluster-spec name checks.

A :class:`~repro.fleet.spec.FleetSpec` must reject empty groups,
duplicate node names across groups, heterogeneous group sizes, and
placements referencing unknown groups — all at parse time, with a clear
:class:`~repro.fleet.spec.FleetConfigError`.  The same applies to the
flat :class:`~repro.net.spec.ClusterSpec` it merges into (duplicate
names / listen addresses surface as ``ValueError`` at construction, not
as opaque transport errors later).
"""

import pytest

from repro.fleet.ring import PlacementMap
from repro.fleet.spec import (
    FLEET_SCHEMA,
    FleetConfigError,
    FleetSpec,
    load_fleet_spec,
)
from repro.net.spec import ClusterSpec, NodeSpec


def _node(name, port=0, role="replica", site="CA"):
    return NodeSpec(name=name, role=role, host="127.0.0.1", port=port,
                    site=site)


class TestFleetBuild:
    def test_build_shapes_groups_and_placement(self):
        fleet = FleetSpec.build(protocol="gryff-rsc", num_groups=3,
                                nodes_per_group=3, base_port=0)
        assert fleet.group_ids() == ["g0", "g1", "g2"]
        assert fleet.group_size == 3
        assert fleet.group_names("g1") == [
            "g1/replica0", "g1/replica1", "g1/replica2"]
        assert fleet.group_of("g2/replica1") == "g2"
        assert set(fleet.placement.group_ids()) <= {"g0", "g1", "g2"}
        assert len(fleet.all_nodes()) == 9

    def test_build_rejects_zero_groups(self):
        with pytest.raises(FleetConfigError, match="at least one group"):
            FleetSpec.build(num_groups=0)

    def test_spanner_build_names_shards(self):
        fleet = FleetSpec.build(protocol="spanner-rss", num_groups=2,
                                nodes_per_group=2, base_port=0)
        assert fleet.group_names("g0") == ["g0/shard0", "g0/shard1"]
        assert fleet.is_spanner and not fleet.is_gryff

    def test_sequential_ports(self):
        fleet = FleetSpec.build(num_groups=2, nodes_per_group=3,
                                base_port=9300)
        ports = [n.port for n in fleet.all_nodes().values()]
        assert ports == list(range(9300, 9306))


class TestFleetValidation:
    def _groups(self):
        return {
            "g0": {"g0/replica0": _node("g0/replica0"),
                   "g0/replica1": _node("g0/replica1")},
            "g1": {"g1/replica0": _node("g1/replica0"),
                   "g1/replica1": _node("g1/replica1")},
        }

    def _placement(self):
        return PlacementMap.build(["g0", "g1"])

    def test_valid_fleet_accepted(self):
        FleetSpec(protocol="gryff-rsc", groups=self._groups(),
                  placement=self._placement())

    def test_empty_group_rejected(self):
        groups = self._groups()
        groups["g1"] = {}
        with pytest.raises(FleetConfigError, match="has no nodes"):
            FleetSpec(protocol="gryff-rsc", groups=groups,
                      placement=self._placement())

    def test_no_groups_rejected(self):
        with pytest.raises(FleetConfigError, match="no groups"):
            FleetSpec(protocol="gryff-rsc", groups={},
                      placement=self._placement())

    def test_duplicate_names_across_groups_rejected(self):
        groups = self._groups()
        groups["g1"] = {"g0/replica0": _node("g0/replica0"),
                        "g1/replica1": _node("g1/replica1")}
        with pytest.raises(FleetConfigError, match="duplicate node name"):
            FleetSpec(protocol="gryff-rsc", groups=groups,
                      placement=self._placement())

    def test_mapping_key_name_mismatch_rejected(self):
        groups = self._groups()
        groups["g0"] = {"g0/replica0": _node("g0/replicaX"),
                        "g0/replica1": _node("g0/replica1")}
        with pytest.raises(FleetConfigError, match="mapping key"):
            FleetSpec(protocol="gryff-rsc", groups=groups,
                      placement=self._placement())

    def test_heterogeneous_group_sizes_rejected(self):
        groups = self._groups()
        groups["g1"] = {"g1/replica0": _node("g1/replica0")}
        with pytest.raises(FleetConfigError, match="same size"):
            FleetSpec(protocol="gryff-rsc", groups=groups,
                      placement=self._placement())

    def test_placement_with_unknown_group_rejected(self):
        with pytest.raises(FleetConfigError, match="unknown groups"):
            FleetSpec(protocol="gryff-rsc", groups=self._groups(),
                      placement=PlacementMap.build(["g0", "g9"]))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(FleetConfigError, match="unknown protocol"):
            FleetSpec(protocol="dynamo", groups=self._groups(),
                      placement=self._placement())

    def test_bad_group_id_rejected(self):
        groups = {"g 0": self._groups()["g0"]}
        with pytest.raises(FleetConfigError, match="invalid group id"):
            FleetSpec(protocol="gryff-rsc", groups=groups,
                      placement=PlacementMap.build(["g 0"]))


class TestFleetViews:
    def test_merged_spec_addresses_every_node(self):
        fleet = FleetSpec.build(num_groups=2, nodes_per_group=3, base_port=0)
        merged = fleet.merged_spec()
        assert isinstance(merged, ClusterSpec)
        assert set(merged.nodes) == set(fleet.all_nodes())
        assert merged.protocol == fleet.protocol
        assert merged.epoch == fleet.epoch
        # Same NodeSpec objects, not copies: an ephemeral port bound by a
        # server LiveProcess propagates to clients built from the same spec.
        for name, node in merged.nodes.items():
            assert node is fleet.all_nodes()[name]

    def test_node_configs_share_one_config_per_group(self):
        fleet = FleetSpec.build(num_groups=2, nodes_per_group=3, base_port=0)
        configs = fleet.node_configs()
        assert set(configs) == set(fleet.all_nodes())
        assert configs["g0/replica0"] is configs["g0/replica2"]
        assert configs["g0/replica0"] is not configs["g1/replica0"]
        assert configs["g0/replica0"].name_prefix == "g0/"
        assert configs["g1/replica0"].name_prefix == "g1/"

    def test_single_group_spanner_routes_like_standalone(self):
        """The degenerate fleet's key→shard mapping is the standalone one."""
        fleet = FleetSpec.build(protocol="spanner-rss", num_groups=1,
                                nodes_per_group=3, base_port=0)
        fleet_config = fleet.client_spanner_config()
        standalone = ClusterSpec.spanner(num_shards=3).spanner_config()
        for i in range(200):
            key = f"key{i}"
            assert fleet_config.shard_for_key(key) == \
                f"g0/{standalone.shard_for_key(key)}"

    def test_client_config_protocol_mismatch_rejected(self):
        gryff = FleetSpec.build(protocol="gryff-rsc", base_port=0)
        spanner = FleetSpec.build(protocol="spanner-rss", base_port=0)
        with pytest.raises(FleetConfigError):
            gryff.client_spanner_config()
        with pytest.raises(FleetConfigError):
            spanner.client_gryff_config()


class TestFleetJson:
    def test_round_trip(self, tmp_path):
        fleet = FleetSpec.build(num_groups=2, nodes_per_group=3,
                                base_port=9400, placement_seed=7)
        path = str(tmp_path / "fleet.json")
        fleet.save(path)
        loaded = load_fleet_spec(path)
        assert loaded.protocol == fleet.protocol
        assert loaded.group_ids() == fleet.group_ids()
        assert loaded.placement == fleet.placement
        assert loaded.epoch == fleet.epoch
        assert loaded.to_dict() == fleet.to_dict()
        assert loaded.to_dict()["schema"] == FLEET_SCHEMA

    def test_wrong_schema_rejected(self):
        with pytest.raises(FleetConfigError, match="not a repro-fleet/1"):
            FleetSpec.from_dict({"schema": "repro-cluster/1"})

    def test_duplicate_names_rejected_at_parse(self):
        fleet = FleetSpec.build(num_groups=2, nodes_per_group=2, base_port=0)
        data = fleet.to_dict()
        data["groups"]["g1"][0]["name"] = "g0/replica0"
        with pytest.raises(FleetConfigError, match="duplicate node name"):
            FleetSpec.from_dict(data)


# --------------------------------------------------------------------------- #
# Satellite: ClusterSpec name validation at parse time
# --------------------------------------------------------------------------- #
class TestClusterSpecNameValidation:
    def test_mapping_key_must_match_node_name(self):
        with pytest.raises(ValueError, match="does not match node name"):
            ClusterSpec(protocol="gryff-rsc",
                        nodes={"replica0": _node("replicaX")})

    def test_empty_node_name_rejected(self):
        with pytest.raises(ValueError, match="empty name"):
            ClusterSpec(protocol="gryff-rsc", nodes={"": _node("")})

    def test_duplicate_listen_address_rejected(self):
        nodes = {"replica0": _node("replica0", port=9500),
                 "replica1": _node("replica1", port=9500)}
        with pytest.raises(ValueError, match="share\\s+listen address"):
            ClusterSpec(protocol="gryff-rsc", nodes=nodes)

    def test_ephemeral_ports_do_not_collide(self):
        nodes = {"replica0": _node("replica0", port=0),
                 "replica1": _node("replica1", port=0)}
        ClusterSpec(protocol="gryff-rsc", nodes=nodes)   # no raise

    def test_duplicate_name_in_file_rejected(self, tmp_path):
        spec = ClusterSpec.gryff(num_replicas=2, base_port=9510)
        data = spec.to_dict()
        data["nodes"][1]["name"] = "replica0"
        import json

        path = tmp_path / "dup.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="duplicate node name"):
            ClusterSpec.load(str(path))
