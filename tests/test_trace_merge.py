"""Merging several trace streams into one ordered record stream.

A fleet run captures one trace per load generator; ``repro load``,
``repro live-check``, and ``repro monitor`` accept several trace paths
and merge them by timestamp through
:func:`~repro.net.recorder.merge_record_streams` before checking.  The
merge must order records by their per-type timestamps, emit exactly one
meta header (carrying ``merged_streams``), refuse mixed protocols, and
qualify op ids per stream so independently numbered generators cannot
collide in the merged history.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.net.recorder import (
    merge_record_streams,
    read_merged_traces,
)


def _meta(protocol="gryff-rsc", **extra):
    return {"type": "meta", "protocol": protocol, "model": "rsc", **extra}


def _inv(op_id, at, process="p"):
    return {"type": "inv", "op_id": op_id, "invoked_at": at,
            "process": process}


def _op(op_id, invoked_at, responded_at, process="p", key="x", value=None):
    return {"type": "op", "op_id": op_id, "op_type": "write",
            "process": process, "key": key, "value": value,
            "invoked_at": invoked_at, "responded_at": responded_at}


class TestMergeOrdering:
    def test_records_interleave_by_timestamp(self):
        a = [_meta(), _op(1, 0.0, 10.0, "pa"), _op(2, 20.0, 30.0, "pa")]
        b = [_meta(), _op(1, 5.0, 15.0, "pb"), _op(2, 22.0, 25.0, "pb")]
        merged = list(merge_record_streams([a, b]))
        assert merged[0]["type"] == "meta"
        times = [r["responded_at"] for r in merged[1:]]
        assert times == sorted(times) == [10.0, 15.0, 25.0, 30.0]

    def test_meta_first_with_stream_count(self):
        merged = list(merge_record_streams([[_meta()], [_meta()]]))
        assert merged[0]["merged_streams"] == 2
        assert merged[0]["protocol"] == "gryff-rsc"
        assert len(merged) == 1

    def test_edge_records_stay_with_their_operation(self):
        a = [_meta(), _op(1, 0.0, 10.0, "pa"),
             {"type": "edge", "src_op": 1, "dst_op": 1},
             _op(2, 40.0, 50.0, "pa")]
        b = [_meta(), _op(7, 15.0, 20.0, "pb")]
        merged = list(merge_record_streams([a, b]))
        kinds = [(r["type"], r.get("src_op") or r.get("op_id"))
                 for r in merged[1:]]
        # The edge (timestampless) inherits its stream's last timestamp,
        # so it sorts immediately after the op it annotates.
        assert kinds == [("op", "t0:1"), ("edge", "t0:1"),
                         ("op", "t1:7"), ("op", "t0:2")]

    def test_protocol_mismatch_rejected(self):
        a = [_meta("gryff-rsc")]
        b = [_meta("spanner-rss")]
        with pytest.raises(ValueError, match="different protocols"):
            list(merge_record_streams([a, b]))


class TestIdQualification:
    def test_multi_stream_ids_are_namespaced(self):
        a = [_meta(), _op(1, 0.0, 1.0, "pa")]
        b = [_meta(), _op(1, 2.0, 3.0, "pb")]
        merged = list(merge_record_streams([a, b]))
        ids = {r["op_id"] for r in merged if r["type"] == "op"}
        assert ids == {"t0:1", "t1:1"}

    def test_single_stream_passes_through_unmodified(self):
        source = [_meta(), _op(1, 0.0, 1.0), _inv(2, 2.0)]
        merged = list(merge_record_streams([source]))
        assert merged[1]["op_id"] == 1      # untouched, still an int
        assert merged[2]["op_id"] == 2

    def test_edge_endpoints_qualified_consistently(self):
        a = [_meta(), _op(1, 0.0, 1.0, "pa"), _op(2, 2.0, 3.0, "pa"),
             {"type": "edge", "src_op": 1, "dst_op": 2}]
        b = [_meta(), _op(1, 5.0, 6.0, "pb")]
        merged = list(merge_record_streams([a, b]))
        edge = next(r for r in merged if r["type"] == "edge")
        assert (edge["src_op"], edge["dst_op"]) == ("t0:1", "t0:2")


class TestMergedFiles:
    def _write(self, path, records):
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def test_read_merged_traces(self, tmp_path):
        ta = str(tmp_path / "a.jsonl")
        tb = str(tmp_path / "b.jsonl")
        self._write(ta, [_meta(), _op(1, 0.0, 10.0, "pa", value="va"),
                         _op(2, 20.0, 30.0, "pa", value="va2")])
        self._write(tb, [_meta(), _op(1, 12.0, 15.0, "pb", value="vb")])
        meta, history = read_merged_traces([ta, tb])
        assert meta["protocol"] == "gryff-rsc"
        assert meta["merged_streams"] == 2
        assert len(history) == 3
        assert {op.process for op in history} == {"pa", "pb"}
        # Same numeric ids from both generators coexist after merging.
        assert len({op.op_id for op in history}) == 3

    def test_live_check_cli_accepts_multiple_traces(self, tmp_path,
                                                    capsys):
        ta = str(tmp_path / "a.jsonl")
        tb = str(tmp_path / "b.jsonl")
        self._write(ta, [_meta(), _op(1, 0.0, 10.0, "pa", value="v1")])
        self._write(tb, [_meta(), _op(1, 12.0, 15.0, "pb", value="v2")])
        rc = cli_main(["live-check", ta, tb])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 ops" in out and "2 process(es)" in out

    def test_monitor_merges_traces(self, tmp_path):
        from repro.obs.monitor import run_monitor

        ta = str(tmp_path / "a.jsonl")
        tb = str(tmp_path / "b.jsonl")
        self._write(ta, [_meta(), _op(1, 0.0, 10.0, "pa", value="v1")])
        self._write(tb, [_meta(), _op(1, 12.0, 15.0, "pb", value="v2")])
        report = run_monitor([ta, tb], idle_timeout=0.0, min_epoch_ops=1)
        assert report.exit_code == 0
        assert report.ops_checked == 2
        assert report.trace == f"{ta},{tb}"
