"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Store,
)


def test_timeout_ordering():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("a", 5))
    env.process(worker("b", 3))
    env.process(worker("c", 3))
    env.run()
    assert log == [(3, "b"), (3, "c"), (5, "a")]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def worker():
        value = yield env.timeout(2, value="hello")
        seen.append(value)

    env.process(worker())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(1)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(results):
        try:
            yield env.process(child())
        except ValueError as exc:
            results.append(str(exc))

    results = []
    env.process(parent(results))
    env.run()
    assert results == ["boom"]


def test_unhandled_process_exception_raises_from_run():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(child())
    with pytest.raises(RuntimeError):
        env.run()


def test_event_succeed_and_multiple_waiters():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter(name):
        value = yield gate
        woken.append((env.now, name, value))

    def trigger():
        yield env.timeout(7)
        gate.succeed("go")

    env.process(waiter("w1"))
    env.process(waiter("w2"))
    env.process(trigger())
    env.run()
    assert woken == [(7, "w1", "go"), (7, "w2", "go")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_stops_clock():
    env = Environment()

    def worker():
        yield env.timeout(100)

    env.process(worker())
    env.run(until=30)
    assert env.now == 30


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def worker():
        t1 = env.timeout(5, value="fast")
        t2 = env.timeout(10, value="slow")
        done = yield env.any_of([t1, t2])
        results.append((env.now, sorted(done.values())))

    env.process(worker())
    env.run()
    assert results == [(5, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def worker():
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(10, value="b")
        done = yield env.all_of([t1, t2])
        results.append((env.now, sorted(done.values())))

    env.process(worker())
    env.run()
    assert results == [(10, ["a", "b"])]


def test_store_fifo_and_blocking():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((env.now, item))

    def producer():
        store.put("x")
        yield env.timeout(4)
        store.put("y")
        store.put("z")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == [(0, "x"), (4, "y"), (4, "z")]


def test_store_len_and_peek():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.peek_all() == [1, 2]


def test_interrupt_raises_in_process():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            caught.append((env.now, exc.cause))

    def interrupter(proc):
        yield env.timeout(3)
        proc.interrupt("wake up")

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    assert caught == [(3, "wake up")]


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_deterministic_tiebreak_is_insertion_order():
    env = Environment()
    order = []

    def worker(name):
        yield env.timeout(1)
        order.append(name)

    for name in ["n1", "n2", "n3", "n4"]:
        env.process(worker(name))
    env.run()
    assert order == ["n1", "n2", "n3", "n4"]
