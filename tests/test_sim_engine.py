"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Store,
)


def test_timeout_ordering():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("a", 5))
    env.process(worker("b", 3))
    env.process(worker("c", 3))
    env.run()
    assert log == [(3, "b"), (3, "c"), (5, "a")]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def worker():
        value = yield env.timeout(2, value="hello")
        seen.append(value)

    env.process(worker())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(1)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(results):
        try:
            yield env.process(child())
        except ValueError as exc:
            results.append(str(exc))

    results = []
    env.process(parent(results))
    env.run()
    assert results == ["boom"]


def test_unhandled_process_exception_raises_from_run():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(child())
    with pytest.raises(RuntimeError):
        env.run()


def test_event_succeed_and_multiple_waiters():
    env = Environment()
    gate = env.event()
    woken = []

    def waiter(name):
        value = yield gate
        woken.append((env.now, name, value))

    def trigger():
        yield env.timeout(7)
        gate.succeed("go")

    env.process(waiter("w1"))
    env.process(waiter("w2"))
    env.process(trigger())
    env.run()
    assert woken == [(7, "w1", "go"), (7, "w2", "go")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 5

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_stops_clock():
    env = Environment()

    def worker():
        yield env.timeout(100)

    env.process(worker())
    env.run(until=30)
    assert env.now == 30


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def worker():
        t1 = env.timeout(5, value="fast")
        t2 = env.timeout(10, value="slow")
        done = yield env.any_of([t1, t2])
        results.append((env.now, sorted(done.values())))

    env.process(worker())
    env.run()
    assert results == [(5, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def worker():
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(10, value="b")
        done = yield env.all_of([t1, t2])
        results.append((env.now, sorted(done.values())))

    env.process(worker())
    env.run()
    assert results == [(10, ["a", "b"])]


def test_store_fifo_and_blocking():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((env.now, item))

    def producer():
        store.put("x")
        yield env.timeout(4)
        store.put("y")
        store.put("z")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == [(0, "x"), (4, "y"), (4, "z")]


def test_store_len_and_peek():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.peek_all() == [1, 2]


def test_interrupt_raises_in_process():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            caught.append((env.now, exc.cause))

    def interrupter(proc):
        yield env.timeout(3)
        proc.interrupt("wake up")

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    assert caught == [(3, "wake up")]


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_failed_event_with_non_consuming_callback_raises():
    """A failure whose callbacks all ignore it must surface, not be
    silently swallowed just because the callback list was non-empty."""
    env = Environment()
    observed = []
    event = env.event()
    event.add_callback(lambda ev: observed.append(ev))
    event.fail(RuntimeError("nobody consumed me"))
    with pytest.raises(RuntimeError, match="nobody consumed me"):
        env.run()
    assert observed  # the callback did run; it just didn't consume the failure


def test_failed_event_consumed_by_process_does_not_raise():
    env = Environment()
    caught = []

    def waiter(event):
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    event = env.event()
    env.process(waiter(event))
    event.fail(RuntimeError("handled"), delay=1)
    env.run()
    assert caught == ["handled"]


def test_condition_absorbs_member_failure():
    """AnyOf/AllOf transfer a member failure into the condition; the waiter
    consuming the condition's failure defuses the whole chain."""
    env = Environment()
    caught = []

    def waiter(condition):
        try:
            yield condition
        except ValueError as exc:
            caught.append(str(exc))

    failing = env.event()
    condition = env.all_of([failing, env.timeout(5)])
    env.process(waiter(condition))
    failing.fail(ValueError("member failed"), delay=1)
    env.run()
    assert caught == ["member failed"]


def test_member_failing_after_condition_triggered_is_consumed():
    """A member that fails after the condition already fired lost the race;
    the failure must not crash the run."""
    env = Environment()
    outcome = []

    def racer():
        slow = env.event()
        slow.fail(RuntimeError("lost the race"), delay=5)
        done = yield env.any_of([slow, env.timeout(1, value="fast")])
        outcome.append(list(done.values()))

    env.process(racer())
    env.run()  # must not raise when the failed member fires at t=5
    assert outcome == [["fast"]]


def test_interrupt_detaches_stale_wait_target():
    """After an interrupt, the old wait target must not resume the process
    at a later yield with a stale value."""
    env = Environment()
    observed = []

    def sleeper():
        try:
            yield env.timeout(10, value="long")
        except Interrupt:
            value = yield env.timeout(20, value="second")
            observed.append((env.now, value))

    def interrupter(proc):
        yield env.timeout(5)
        proc.interrupt()

    proc = env.process(sleeper())
    env.process(interrupter(proc))
    env.run()
    # The second yield must complete at t=25 with its own value — not be
    # spuriously resumed at t=10 by the stale first timeout.
    assert observed == [(25, "second")]


def test_interrupted_store_getter_does_not_swallow_items():
    """An interrupted getter must leave the store's queue; the next put goes
    to a live waiter instead of vanishing into the dead event."""
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        while True:
            try:
                item = yield store.get()
            except Interrupt:
                continue
            got.append(item)
            if len(got) == 2:
                return

    def driver(proc):
        yield env.timeout(1)
        proc.interrupt()
        yield env.timeout(1)
        store.put("A")
        store.put("B")

    proc = env.process(consumer())
    env.process(driver(proc))
    env.run()
    assert got == ["A", "B"]


def test_interrupt_recovers_item_from_succeeded_getter():
    """If a getter was already handed an item when its waiter is
    interrupted, the item goes back to the store instead of vanishing."""
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        while len(got) < 3:
            try:
                item = yield store.get()
            except Interrupt:
                continue
            got.append(item)

    def driver(proc):
        yield env.timeout(1)
        store.put("A")     # pops the blocked getter and schedules it...
        proc.interrupt()   # ...then the waiter is interrupted same-step
        yield env.timeout(1)
        store.put("B")
        store.put("C")

    proc = env.process(consumer())
    env.process(driver(proc))
    env.run()
    assert got == ["A", "B", "C"]


def test_timeout_pool_recycles_objects():
    """Timeouts consumed by a single process are reused, and reuse does not
    perturb values or ordering."""
    env = Environment()
    seen = []

    def worker():
        for i in range(50):
            value = yield env.timeout(1, value=i)
            seen.append(value)

    env.process(worker())
    env.run()
    assert seen == list(range(50))
    assert env._timeout_pool  # the free list was actually populated
    recycled = env._timeout_pool[-1]
    fresh = env.timeout(3, value="again")
    assert fresh is recycled
    env.run()
    assert fresh.value == "again"


def test_store_get_events_recycled():
    env = Environment()
    store = Store(env)
    received = []

    def consumer():
        for _ in range(20):
            item = yield store.get()
            received.append(item)

    def producer():
        for i in range(20):
            store.put(i)
            yield env.timeout(1)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert received == list(range(20))
    assert env._get_pool


def test_events_scheduled_counter():
    env = Environment()

    def worker():
        yield env.timeout(1)
        yield env.timeout(1)

    env.process(worker())
    env.run()
    # init event + two timeouts + process completion event.
    assert env.events_scheduled == 4


def test_deterministic_tiebreak_is_insertion_order():
    env = Environment()
    order = []

    def worker(name):
        yield env.timeout(1)
        order.append(name)

    for name in ["n1", "n2", "n3", "n4"]:
        env.process(worker(name))
    env.run()
    assert order == ["n1", "n2", "n3", "n4"]
