"""Additional coverage for behaviours not exercised elsewhere: the
single-threaded server CPU queue, network broadcast, engine bounds, and
witness-order edge cases."""

import pytest

from repro.core.events import Operation
from repro.core.history import History
from repro.gryff.cluster import GryffCluster
from repro.gryff.config import GryffConfig, GryffVariant
from repro.sim.engine import Environment, SimulationError
from repro.sim.network import Network, single_dc
from repro.sim.node import Node
from repro.spanner.cluster import SpannerCluster
from repro.spanner.config import SpannerConfig, Variant


class CountingServer(Node):
    def __init__(self, env, network, name, site, cpu_time_ms):
        super().__init__(env, network, name, site, cpu_time_ms=cpu_time_ms)
        self.handled = []

    def on_work(self, message):
        self.handled.append(self.env.now)
        return {"done": True}


def test_cpu_queue_serializes_message_processing():
    env = Environment()
    net = Network(env, single_dc(rtt_ms=0.0))
    server = CountingServer(env, net, "server", "DC", cpu_time_ms=10.0)
    client = Node(env, net, "client", "DC")
    for _ in range(5):
        client.rpc_call("server", "work")
    env.run()
    # Five messages, 10 ms of CPU each, processed strictly one at a time.
    assert len(server.handled) == 5
    gaps = [b - a for a, b in zip(server.handled, server.handled[1:])]
    assert all(gap >= 10.0 - 1e-9 for gap in gaps)
    assert env.now >= 50.0


def test_cpu_queue_zero_cost_is_concurrent():
    env = Environment()
    net = Network(env, single_dc(rtt_ms=0.0))
    server = CountingServer(env, net, "server", "DC", cpu_time_ms=0.0)
    client = Node(env, net, "client", "DC")
    for _ in range(5):
        client.rpc_call("server", "work")
    env.run()
    assert len(server.handled) == 5
    assert env.now < 1.0


def test_network_broadcast_reaches_all_destinations():
    env = Environment()
    net = Network(env, single_dc(rtt_ms=2.0))
    received = []

    class Sink(Node):
        def on_note(self, message):
            received.append(self.name)

    sender = Node(env, net, "sender", "DC")
    for name in ("a", "b", "c"):
        Sink(env, net, name, "DC")
    net.broadcast("sender", ["a", "b", "c"], "note", {"data": 1})
    env.run()
    assert sorted(received) == ["a", "b", "c"]


def test_engine_run_with_max_events():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1)

    env.process(ticker())
    env.run(max_events=10)
    assert env.now <= 11


def test_engine_run_until_without_events_advances_clock():
    env = Environment()
    assert env.run(until=25.0) == 25.0
    assert env.now == 25.0


def test_history_extend_merges_operations_and_edges():
    a = History()
    first = a.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    second = a.add(Operation.read("P2", "x", 1, invoked_at=2, responded_at=3))
    a.add_message_edge(first, second)
    b = History()
    b.extend(a)
    assert len(b) == 2
    assert len(b.message_edges) == 1


def test_gryff_witness_order_handles_cross_key_process_order():
    """A client that writes one key then reads another must appear in that
    order in the witness even though the second key's carstamp is smaller."""
    cluster = GryffCluster(GryffConfig(variant=GryffVariant.GRYFF_RSC))
    client = cluster.new_client("CA")

    def workload():
        yield from client.write("a", "v1")
        yield from client.read("b")

    cluster.spawn(workload())
    cluster.run()
    witness = cluster.witness_order("rsc")
    ids = [op.op_id for op in witness]
    ops = cluster.history.by_process(client.name)
    assert ids.index(ops[0].op_id) < ids.index(ops[1].op_id)
    assert cluster.check_consistency().satisfied


def test_spanner_reconstructs_server_side_commits_for_checking():
    """A committed-but-unacknowledged transaction (crashed client) appears in
    the checking history as a reconstructed pending operation."""
    cluster = SpannerCluster(SpannerConfig(variant=Variant.SPANNER_RSS, seed=2))
    victim = cluster.new_client("CA", name="victim")
    reader = cluster.new_client("VA", name="reader")

    def crash_mid_commit():
        victim.stop()  # replies will never reach the client
        try:
            yield from victim.read_write_transaction(
                [], lambda _reads: {"k": "ghost"}, max_retries=0)
        except Exception:
            pass

    def read_later():
        yield cluster.env.timeout(1_000)
        yield from reader.read_only_transaction(["k"])

    cluster.spawn(crash_mid_commit())
    cluster.spawn(read_later())
    cluster.run(until=5_000)
    checking_history = cluster._history_for_checking()
    reconstructed = [op for op in checking_history if op.meta.get("reconstructed")]
    assert len(reconstructed) == 1
    assert reconstructed[0].write_set == {"k": "ghost"}
    assert cluster.check_consistency().satisfied


def test_spanner_client_sessions_change_history_process():
    cluster = SpannerCluster(SpannerConfig(variant=Variant.SPANNER_RSS))
    client = cluster.new_client("CA", name="loadgen")

    def workload():
        yield from client.read_only_transaction(["x"])
        client.new_session()
        yield from client.read_only_transaction(["x"])

    cluster.spawn(workload())
    cluster.run()
    processes = [op.process for op in cluster.history]
    assert processes[0] == "loadgen"
    assert processes[1] == "loadgen/s1"
    assert client.t_min == 0.0 or client.t_min >= 0.0  # reset at session start


def test_negative_jitter_and_latency_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(env.event(), delay=-1)
