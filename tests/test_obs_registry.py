"""Observability core: metrics registry, /metrics endpoint, windowed
latency percentiles, and the admission controller."""

import asyncio

import pytest

from repro.obs import (
    AdmissionController,
    BackpressureError,
    CONTENT_TYPE,
    MetricsRegistry,
    MetricsServer,
    scrape,
)
from repro.sim.stats import LatencyRecorder


# --------------------------------------------------------------------------- #
# Registry and metric kinds
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_accumulates_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_ops_total", "ops")
        counter.inc()
        counter.inc(2, node="a")
        counter.inc(3, node="a")
        assert counter.value() == 1
        assert counter.value(node="a") == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways_and_supports_callbacks(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth", "queue depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3
        box = {"n": 7}
        gauge.set_function(lambda: box["n"], node="x")
        assert gauge.value(node="x") == 7
        box["n"] = 9
        assert gauge.value(node="x") == 9

    def test_get_or_create_is_idempotent_but_kind_safe(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "help text")
        assert registry.counter("repro_x_total") is first
        assert registry.get("repro_x_total") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")
        assert registry.names() == ["repro_x_total"]

    def test_render_is_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total", "b help").inc(2, node="n1")
        registry.gauge("repro_a", "a help").set(1.5)
        text = registry.render()
        lines = text.splitlines()
        # Sorted by metric name, HELP/TYPE headers, trailing newline.
        assert text.endswith("\n")
        assert lines[0] == "# HELP repro_a a help"
        assert lines[1] == "# TYPE repro_a gauge"
        assert lines[2] == "repro_a 1.5"
        assert "# TYPE repro_b_total counter" in lines
        assert 'repro_b_total{node="n1"} 2' in lines

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_esc_total").inc(1, node='a"b\\c\nd')
        assert r'node="a\"b\\c\nd"' in registry.render()

    def test_broken_collector_does_not_break_the_scrape(self):
        registry = MetricsRegistry()

        def dead():
            raise AttributeError("node crashed")

        registry.gauge("repro_dead", "gone").set_function(dead)
        registry.gauge("repro_alive", "here").set(1)
        text = registry.render()
        assert "repro_alive 1" in text
        assert "\nrepro_dead " not in text        # sample skipped, not 0
        assert registry.render_errors == 1

    def test_histogram_windows_reset_per_scrape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_ms", "latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value, op="read")
        first = registry.render()
        assert 'repro_lat_ms{op="read",quantile="0.5"}' in first
        assert 'repro_lat_ms_count{op="read"} 4' in first
        assert 'repro_lat_ms_sum{op="read"} 10' in first
        # The scrape reset the window: no quantile samples, but the
        # cumulative count/sum survive.
        second = registry.render()
        assert "quantile" not in second
        assert 'repro_lat_ms_count{op="read"} 4' in second
        hist.observe(10.0, op="read")
        third = registry.render()
        assert 'repro_lat_ms{op="read",quantile="0.5"} 10' in third
        assert 'repro_lat_ms_count{op="read"} 5' in third

    def test_histogram_rejects_collector_callbacks(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError, match="observe"):
            registry.histogram("repro_h_ms").set_function(lambda: 1.0)

    def test_as_dict_is_a_peek_not_a_scrape(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total").inc(2)
        hist = registry.histogram("repro_h_ms")
        hist.observe(5.0)
        payload = registry.as_dict()
        assert payload["repro_c_total"]["values"][""] == 2
        assert payload["repro_h_ms"]["values"][""]["window"]["count"] == 1
        # The window is still intact afterwards.
        assert registry.as_dict()["repro_h_ms"]["values"][""]["window"] is not None


# --------------------------------------------------------------------------- #
# Windowed percentiles on LatencyRecorder
# --------------------------------------------------------------------------- #
class TestLatencyRecorderWindows:
    def test_window_snapshot_covers_only_new_samples(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record_latency("read", value)
        first = recorder.window_snapshot("read")
        assert first["count"] == 3 and first["p50"] == 2.0
        recorder.reset_window("read")
        assert recorder.window_snapshot("read") is None
        assert recorder.window_count("read") == 0
        recorder.record_latency("read", 100.0)
        second = recorder.window_snapshot("read")
        assert second["count"] == 1
        assert second["p50"] == second["max"] == 100.0

    def test_snapshot_returns_every_category(self):
        recorder = LatencyRecorder()
        recorder.record_latency("read", 1.0)
        recorder.record_latency("write", 2.0)
        snap = recorder.snapshot()
        assert set(snap) == {"read", "write"}
        assert snap["write"]["sum"] == 2.0

    def test_windows_do_not_disturb_cumulative_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record_latency("op", float(value))
        recorder.window_snapshot("op")
        recorder.reset_window()
        recorder.record_latency("op", 1000.0)
        # Cumulative percentiles still see all 101 samples (memoized sort
        # invalidates correctly across window resets).
        stats = recorder.percentiles("op")
        assert stats.count == 101
        assert stats.p50 == pytest.approx(51.0, abs=1.0)
        assert recorder.window_snapshot("op")["count"] == 1


# --------------------------------------------------------------------------- #
# /metrics endpoint
# --------------------------------------------------------------------------- #
class TestMetricsServer:
    def test_serves_metrics_healthz_and_404(self):
        registry = MetricsRegistry()
        registry.counter("repro_http_total", "h").inc(3)

        async def scenario():
            server = MetricsServer(registry)
            port = await server.start()
            assert port > 0 and str(port) in server.url
            try:
                body = await scrape("127.0.0.1", port)
                health = await scrape("127.0.0.1", port, path="/healthz")
                with pytest.raises(RuntimeError, match="404"):
                    await scrape("127.0.0.1", port, path="/nope")
            finally:
                await server.close()
            return body, health, server.requests

        body, health, requests = asyncio.run(scenario())
        assert "repro_http_total 3" in body
        assert health == "ok\n"
        assert requests == 3
        assert "0.0.4" in CONTENT_TYPE

    def test_scrape_resets_histogram_windows(self):
        registry = MetricsRegistry()
        registry.histogram("repro_s_ms").observe(4.0)

        async def scenario():
            server = MetricsServer(registry)
            port = await server.start()
            try:
                first = await scrape("127.0.0.1", port)
                second = await scrape("127.0.0.1", port)
            finally:
                await server.close()
            return first, second

        first, second = asyncio.run(scenario())
        assert 'quantile="0.5"' in first
        assert "quantile" not in second


# --------------------------------------------------------------------------- #
# Backpressure / admission control
# --------------------------------------------------------------------------- #
class TestAdmissionController:
    def test_admits_within_thresholds(self):
        controller = AdmissionController(max_checker_lag_s=1.0,
                                         checker_lag_s=lambda: 0.2)
        controller.admit()
        assert controller.counters() == {"admitted": 1, "shed": 0,
                                         "delayed": 0}

    def test_sheds_on_checker_lag(self):
        controller = AdmissionController(max_checker_lag_s=1.0,
                                         checker_lag_s=lambda: 5.0)
        with pytest.raises(BackpressureError, match="checker lag"):
            controller.admit()
        assert controller.shed == 1

    def test_sheds_on_queue_depth(self):
        controller = AdmissionController(max_queue_depth=10,
                                         queue_depth=lambda: 11)
        assert "queue depth" in controller.overloaded()
        with pytest.raises(BackpressureError):
            controller.admit()

    def test_delay_hook_turns_shedding_into_backoff(self):
        reasons = []
        controller = AdmissionController(max_queue_depth=0,
                                         queue_depth=lambda: 1,
                                         delay=reasons.append)
        controller.admit()
        assert controller.delayed == 1 and controller.shed == 0
        assert "queue depth" in reasons[0]

    def test_store_session_gate(self):
        """LiveStore.session consults the controller when one is attached."""
        from repro.api import open_store
        from repro.net.spec import ClusterSpec

        spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
        store = open_store(spec)
        assert store.admission is None
        store.admission = AdmissionController(max_queue_depth=0,
                                              queue_depth=lambda: 1)
        with pytest.raises(BackpressureError):
            store.session(site=spec.sites()[0], name="c1")
        store.admission = None
        session = store.session(site=spec.sites()[0], name="c1")
        assert session is not None
