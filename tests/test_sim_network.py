"""Unit tests for the network model and node/RPC layers."""

import pytest

from repro.sim.engine import Environment
from repro.sim.network import (
    GRYFF_RTT_MS,
    LatencyMatrix,
    Network,
    gryff_wan,
    single_dc,
    spanner_wan,
)
from repro.sim.node import Node


class Echo(Node):
    """Replies to ping RPCs and records one-way messages."""

    def __init__(self, env, network, name, site):
        super().__init__(env, network, name, site)
        self.received = []

    def on_ping(self, message):
        return {"pong_from": self.name, "echo": message.payload.get("data")}

    def on_slow_ping(self, message):
        yield self.env.timeout(10)
        return {"pong_from": self.name}

    def on_note(self, message):
        self.received.append((self.env.now, message.payload["data"]))


class Caller(Node):
    def __init__(self, env, network, name, site):
        super().__init__(env, network, name, site)
        self.results = []

    def run_single(self, dst):
        reply = yield self.rpc_call(dst, "ping", data="hi")
        self.results.append((self.env.now, reply["pong_from"], reply["echo"]))

    def run_multicast(self, dsts, quorum):
        call = self.rpc_multicast(dsts, "ping", data="q")
        replies = yield call.wait(quorum)
        self.results.append((self.env.now, sorted(replies)))


def make_net(latency=None, **kwargs):
    env = Environment()
    net = Network(env, latency or single_dc(rtt_ms=10.0), **kwargs)
    return env, net


def test_latency_matrix_symmetry_and_local():
    lm = gryff_wan()
    assert lm.rtt("CA", "JP") == lm.rtt("JP", "CA") == 113.0
    assert lm.rtt("CA", "CA") == 0.2
    assert lm.one_way("VA", "IR") == 44.0
    assert set(lm.sites) == {"CA", "VA", "IR", "OR", "JP"}


def test_latency_matrix_missing_pair_raises():
    lm = LatencyMatrix({("A", "B"): 10.0})
    with pytest.raises(KeyError):
        lm.rtt("A", "C")


def test_spanner_wan_values():
    lm = spanner_wan()
    assert lm.rtt("CA", "VA") == 62.0
    assert lm.rtt("CA", "IR") == 136.0
    assert lm.rtt("VA", "IR") == 68.0


def test_gryff_rtt_matrix_matches_table2():
    assert GRYFF_RTT_MS[("IR", "JP")] == 220.0
    assert GRYFF_RTT_MS[("CA", "OR")] == 59.0


def test_one_way_message_delivery_time():
    env, net = make_net()
    a = Echo(env, net, "a", "DC")
    b = Echo(env, net, "b", "DC")
    a.send("b", "note", data="hello")
    env.run()
    assert b.received == [(5.0, "hello")]


def test_rpc_round_trip_latency():
    lm = LatencyMatrix({("X", "Y"): 100.0})
    env = Environment()
    net = Network(env, lm)
    Echo(env, net, "server", "Y")
    caller = Caller(env, net, "client", "X")
    env.process(caller.run_single("server"))
    env.run()
    assert caller.results == [(100.0, "server", "hi")]


def test_rpc_generator_handler_adds_service_time():
    lm = LatencyMatrix({("X", "Y"): 100.0})
    env = Environment()
    net = Network(env, lm)
    Echo(env, net, "server", "Y")
    caller = Caller(env, net, "client", "X")

    def run():
        reply = yield caller.rpc_call("server", "slow_ping")
        caller.results.append((env.now, reply["pong_from"]))

    env.process(run())
    env.run()
    assert caller.results == [(110.0, "server")]


def test_multicast_quorum_wait():
    lm = LatencyMatrix({("C", "N1"): 10.0, ("C", "N2"): 50.0, ("C", "N3"): 200.0})
    env = Environment()
    net = Network(env, lm)
    for name in ["n1", "n2", "n3"]:
        Echo(env, net, name, name.upper())
    caller = Caller(env, net, "client", "C")
    env.process(caller.run_multicast(["n1", "n2", "n3"], quorum=2))
    env.run()
    when, replied = caller.results[0]
    assert when == 50.0
    assert replied == ["n1", "n2"]


def test_multicast_late_replies_still_recorded():
    lm = LatencyMatrix({("C", "N1"): 10.0, ("C", "N2"): 200.0})
    env = Environment()
    net = Network(env, lm)
    Echo(env, net, "n1", "N1")
    Echo(env, net, "n2", "N2")
    caller = Caller(env, net, "client", "C")
    calls = {}

    def run():
        call = caller.rpc_multicast(["n1", "n2"], "ping", data="x")
        calls["call"] = call
        yield call.wait(1)

    env.process(run())
    env.run()
    assert calls["call"].reply_count == 2


def test_fifo_channel_ordering_with_jitter():
    env = Environment()
    net = Network(env, single_dc(rtt_ms=10.0), jitter_ms=8.0, seed=3)
    a = Echo(env, net, "a", "DC")
    b = Echo(env, net, "b", "DC")
    for i in range(20):
        a.send("b", "note", data=i)
    env.run()
    values = [v for _, v in b.received]
    assert values == list(range(20))


def test_unknown_destination_raises():
    env, net = make_net()
    a = Echo(env, net, "a", "DC")
    with pytest.raises(KeyError):
        a.send("missing", "note", data=1)


def test_duplicate_node_name_rejected():
    env, net = make_net()
    Echo(env, net, "a", "DC")
    with pytest.raises(ValueError):
        Echo(env, net, "a", "DC")


def test_unhandled_message_kind_raises():
    env, net = make_net()
    a = Echo(env, net, "a", "DC")
    Echo(env, net, "b", "DC")
    a.send("b", "no_such_kind", data=1)
    with pytest.raises(Exception):
        env.run()


def test_stopped_node_drops_messages():
    env, net = make_net()
    a = Echo(env, net, "a", "DC")
    b = Echo(env, net, "b", "DC")
    b.stop()
    a.send("b", "note", data="dropped")
    env.run()
    assert b.received == []


def test_network_counters_and_trace():
    env, net = make_net()
    net.enable_trace()
    a = Echo(env, net, "a", "DC")
    Echo(env, net, "b", "DC")
    a.send("b", "note", data=1)
    a.send("b", "note", data=2)
    env.run()
    assert net.messages_sent == 2
    assert len(net.trace) == 2
    assert all(m.deliver_time >= m.send_time for m in net.trace)
