"""RealtimeEnvironment semantics, including the sim-vs-live differential.

The environment must honor the sim kernel's contracts (ordering, stores,
conditions, interrupts) while pacing them against the wall clock; the
differential test at the bottom runs the *same* tiny Gryff-RSC workload
through the deterministic simulator and through the live TCP runtime and
asserts both captured histories satisfy RSC.
"""

import asyncio
import time

import pytest

from repro.core.checkers import check_with_witness
from repro.core.specification import RegisterSpec
from repro.gryff.cluster import GryffCluster, gryff_witness_order
from repro.gryff.config import GryffConfig, GryffVariant
from repro.net.realtime import RealtimeEnvironment
from repro.sim.engine import Interrupt, SimulationError
from repro.workloads.clients import ClosedLoopDriver
from repro.workloads.ycsb import YcsbWorkload


# Sites of the 3-replica deployment used by the differential test.
SITES = ["CA", "VA", "IR"]


class TestRealtimeEnvironment:
    def test_sim_run_is_disabled(self):
        env = RealtimeEnvironment()
        with pytest.raises(SimulationError):
            env.run()

    def test_now_is_monotone_wall_clock(self):
        env = RealtimeEnvironment()
        first = env.now
        time.sleep(0.005)
        assert env.now >= first + 4.0   # ms

    def test_timeout_ordering_and_pacing(self):
        async def scenario():
            env = RealtimeEnvironment()
            log = []

            def worker(name, delay):
                yield env.timeout(delay)
                log.append(name)

            start = env.now
            slow = env.process(worker("slow", 40))
            fast = env.process(worker("fast", 10))
            pump = asyncio.ensure_future(env.run_async())
            await asyncio.gather(env.as_future(slow), env.as_future(fast))
            env.request_stop()
            await pump
            return log, env.now - start

        log, elapsed = asyncio.run(scenario())
        assert log == ["fast", "slow"]
        assert elapsed >= 40.0   # timeouts never fire early

    def test_store_handoff_from_asyncio_context(self):
        async def scenario():
            env = RealtimeEnvironment()
            store = env.store()
            received = []

            def consumer():
                while True:
                    item = yield store.get()
                    received.append(item)
                    if item == "stop":
                        return

            process = env.process(consumer())
            pump = asyncio.ensure_future(env.run_async())
            # Producer lives outside the pump (like a TCP reader task): it
            # must kick after triggering events.
            await asyncio.sleep(0.005)
            store.put("a")
            env.kick()
            await asyncio.sleep(0.005)
            store.put("stop")
            env.kick()
            await env.as_future(process)
            env.request_stop()
            await pump
            return received

        assert asyncio.run(scenario()) == ["a", "stop"]

    def test_conditions_and_interrupt(self):
        async def scenario():
            env = RealtimeEnvironment()
            outcome = {}

            def sleeper():
                try:
                    yield env.timeout(10_000)
                except Interrupt as exc:
                    outcome["cause"] = exc.cause

            def waiter():
                result = yield env.any_of([env.timeout(5, "early"),
                                           env.timeout(9_000, "late")])
                outcome["any_of"] = sorted(result.values())

            sleeping = env.process(sleeper())
            waiting = env.process(waiter())
            pump = asyncio.ensure_future(env.run_async())
            await asyncio.sleep(0.002)
            sleeping.interrupt("shutdown")
            env.kick()
            await asyncio.gather(env.as_future(sleeping), env.as_future(waiting))
            env.request_stop()
            await pump
            return outcome

        outcome = asyncio.run(scenario())
        assert outcome["cause"] == "shutdown"
        assert outcome["any_of"] == ["early"]

    def test_process_failure_propagates_through_pump(self):
        async def scenario():
            env = RealtimeEnvironment()

            def boom():
                yield env.timeout(1)
                raise RuntimeError("protocol bug")

            process = env.process(boom())
            pump = asyncio.ensure_future(env.run_async())
            with pytest.raises(RuntimeError, match="protocol bug"):
                await env.as_future(process)
            env.request_stop()
            await pump

        asyncio.run(scenario())

    def test_drive_one_shot(self):
        env = RealtimeEnvironment()

        def hello():
            yield env.timeout(1)
            return "done"

        assert asyncio.run(env.drive(hello())) == "done"

    def test_drive_surfaces_pump_failure_instead_of_hanging(self):
        """An unhandled event failure kills the pump; waits on processes
        must then raise, not deadlock."""
        async def scenario():
            env = RealtimeEnvironment()

            def stuck():
                yield env.timeout(60_000)   # would block a naive await forever

            failed = env.event()
            failed.fail(RuntimeError("unhandled failure"))   # nobody defuses it
            with pytest.raises(RuntimeError, match="unhandled failure"):
                await env.drive(stuck())

        asyncio.run(scenario())

    def test_shared_epoch_aligns_processes(self):
        epoch = time.time() - 1.0
        env_a = RealtimeEnvironment(epoch=epoch)
        env_b = RealtimeEnvironment(epoch=epoch)
        assert abs(env_a.now - env_b.now) < 50.0   # ms, same clock basis


# --------------------------------------------------------------------------- #
# Sim-vs-live differential
# --------------------------------------------------------------------------- #
def _workloads(clients):
    return [
        YcsbWorkload(client_id=client.name, write_ratio=0.5, conflict_rate=0.4,
                     seed=42 + index)
        for index, client in enumerate(clients)
    ]


def _run_sim_gryff(ops_per_client=6, num_clients=2):
    from repro.api import ycsb_executor

    config = GryffConfig(variant=GryffVariant.GRYFF_RSC, sites=list(SITES))
    cluster = GryffCluster(config)
    clients = [cluster.new_client(SITES[i % len(SITES)])
               for i in range(num_clients)]
    driver = ClosedLoopDriver(cluster.env,
                              list(zip(clients, _workloads(clients))),
                              ycsb_executor,
                              operations_per_client=ops_per_client)
    driver.start()
    cluster.run()
    return cluster.history


def _run_live_gryff(ops_per_client=6, num_clients=2):
    from repro.api import ycsb_executor
    from repro.gryff.client import GryffClient
    from repro.net.cluster import LiveProcess
    from repro.net.spec import ClusterSpec

    async def scenario():
        spec = ClusterSpec.gryff(num_replicas=len(SITES), base_port=0)
        server = LiveProcess(spec)          # binds ephemeral ports in-place
        await server.start()
        client_proc = LiveProcess(spec, host_nodes=())
        config = spec.gryff_config()
        clients = [
            GryffClient(client_proc.env, client_proc.transport, config,
                        name=f"client{i + 1}@{SITES[i % len(SITES)]}",
                        site=SITES[i % len(SITES)])
            for i in range(num_clients)
        ]
        shared = clients[0].history
        for client in clients[1:]:
            client.history = shared
        driver = ClosedLoopDriver(client_proc.env,
                                  list(zip(clients, _workloads(clients))),
                                  ycsb_executor,
                                  operations_per_client=ops_per_client)
        await client_proc.start()
        procs = driver.start()
        await asyncio.gather(*(client_proc.env.as_future(p) for p in procs))
        await client_proc.stop()
        await server.stop()
        return shared

    return asyncio.run(scenario())


class TestSimVsLiveDifferential:
    def test_same_workload_passes_rsc_both_ways(self):
        sim_history = _run_sim_gryff()
        live_history = _run_live_gryff()

        # Same logical workload was issued in both worlds.
        def issued(history):
            return sorted((op.process, op.op_type.value, op.key,
                           op.value if op.is_mutation else None)
                          for op in history)

        assert issued(sim_history) == issued(live_history)
        assert sim_history.is_well_formed()
        assert live_history.is_well_formed()

        # Both captured histories satisfy RSC (Theorem D.15 construction).
        for history in (sim_history, live_history):
            witness = gryff_witness_order(history, "rsc")
            assert witness is not None
            result = check_with_witness(history, witness, model="rsc",
                                        spec=RegisterSpec())
            assert result, result.reason
