"""Chaos scenarios end to end: timelines, fault windows, the catalog, and
`run_scenario` on both backends (checker-verified verdicts).

Live runs here use the short CI smoke scenarios; the full catalog runs on
both backends in the chaos-smoke CI job (`python -m repro chaos`).
"""

import json

import pytest

from repro.chaos import (
    ChaosReport,
    FaultEvent,
    Scenario,
    all_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.cli import main as cli_main


# --------------------------------------------------------------------------- #
# Timeline validation and fault windows
# --------------------------------------------------------------------------- #
class TestScenarioModel:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            FaultEvent(10.0, "meteor-strike", "replica0")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at_ms"):
            FaultEvent(-1.0, "crash", "replica0")

    def test_crashed_nodes_deduplicated_in_order(self):
        scenario = Scenario(name="s", protocol="gryff-rsc", description="",
                            events=[FaultEvent(500, "crash", "b"),
                                    FaultEvent(100, "crash", "a"),
                                    FaultEvent(900, "crash", "a")])
        assert scenario.crashed_nodes() == ["a", "b"]

    def test_fault_windows_pair_openers_with_closers(self):
        scenario = Scenario(
            name="s", protocol="spanner-rss", description="",
            duration_ms=2_000, op_timeout_ms=400, window_slack_ms=100,
            events=[
                FaultEvent(100, "crash", "shard0"),
                FaultEvent(500, "restart", "shard0"),
                FaultEvent(200, "partition", args={"groups": [["a"], ["b"]]}),
                FaultEvent(800, "heal"),
                FaultEvent(300, "skew", "shard1", args={"offset_ms": 5.0}),
                FaultEvent(600, "skew", "shard1", args={"offset_ms": 0.0}),
                FaultEvent(900, "drop", args={"probability": 0.5}),
            ])
        windows = scenario.fault_windows()
        # Closed windows get the slack; the unclosed drop rule runs to the
        # end of the run (duration + op timeout + slack).
        assert (100, 600) in windows
        assert (200, 900) in windows
        assert (300, 700) in windows
        assert (900, 2_500) in windows

    def test_epsilon_sweep_closes_on_restore(self):
        scenario = Scenario(
            name="s", protocol="spanner-rss", description="",
            window_slack_ms=50,
            events=[
                FaultEvent(400, "epsilon", args={"epsilon_ms": 4.0}),
                FaultEvent(1_000, "epsilon", args={"epsilon_ms": 20.0}),
                FaultEvent(1_600, "epsilon", args={"epsilon_ms": 10.0,
                                                   "restore": True}),
            ])
        assert scenario.fault_windows() == [(400, 1_650)]


# --------------------------------------------------------------------------- #
# The catalog
# --------------------------------------------------------------------------- #
class TestCatalog:
    REQUIRED = {
        "replica-crash-restart", "leader-crash-failover", "partition-heal",
        "drop-reorder-burst", "clock-skew-sweep", "truetime-epsilon-sweep",
        "gryff-smoke", "spanner-smoke",
    }

    def test_catalog_covers_the_required_scenarios(self):
        names = set(scenario_names())
        assert self.REQUIRED <= names
        assert len(names) >= 6

    def test_every_scenario_is_well_formed(self):
        for scenario in all_scenarios().values():
            assert scenario.protocol in ("gryff-rsc", "spanner-rss")
            assert scenario.events, scenario.name
            assert scenario.fault_windows(), scenario.name
            crashed = set(scenario.crashed_nodes())
            restarted = {e.target for e in scenario.events
                         if e.action == "restart"}
            assert crashed == restarted, \
                f"{scenario.name}: every crash must have a restart"

    def test_get_scenario_returns_fresh_objects(self):
        first = get_scenario("gryff-smoke")
        first.events.append(FaultEvent(1, "heal"))
        assert len(get_scenario("gryff-smoke").events) != len(first.events)

    def test_unknown_scenario_lists_the_known_ones(self):
        with pytest.raises(KeyError, match="replica-crash-restart"):
            get_scenario("nope")

    def test_skew_on_gryff_is_rejected(self):
        scenario = Scenario(name="bad", protocol="gryff-rsc", description="",
                            events=[FaultEvent(10, "skew", "replica0",
                                               args={"offset_ms": 5.0})])
        with pytest.raises(ValueError, match="skew"):
            run_scenario(scenario, backend="sim")


# --------------------------------------------------------------------------- #
# run_scenario: sim backend
# --------------------------------------------------------------------------- #
class TestRunScenarioSim:
    def test_gryff_smoke_crash_restart_partition_heal(self, tmp_path):
        report = run_scenario(get_scenario("gryff-smoke"), backend="sim",
                              trace_dir=str(tmp_path))
        assert isinstance(report, ChaosReport)
        assert report.ok, report.describe()
        assert report.backend == "sim" and report.protocol == "gryff-rsc"
        assert report.ops > 0
        # The crashed replica recovered its exact pre-crash durable state.
        assert report.recoveries and all(r.matches for r in report.recoveries)
        # The partition actually dropped traffic.
        assert report.fault_counters["dropped"] > 0
        # Violations, if any, stayed inside the declared fault windows.
        assert report.violations_outside_windows == []
        assert (tmp_path / "trace.jsonl").exists()

    def test_leader_crash_failover_bumps_the_lease_term(self, tmp_path):
        report = run_scenario(get_scenario("leader-crash-failover"),
                              backend="sim", trace_dir=str(tmp_path))
        assert report.ok, report.describe()
        assert report.recoveries and all(r.matches for r in report.recoveries)
        # The crashed leader's lease expired and re-election fenced it with
        # a higher term.
        terms = [term for _, _, term in
                 report.lease_transitions.get("shard1", [])]
        assert terms and max(terms) >= 2

    def test_expect_clean_scenario_must_fully_satisfy(self, tmp_path):
        report = run_scenario(get_scenario("clock-skew-sweep"), backend="sim",
                              trace_dir=str(tmp_path))
        assert report.expect_clean
        assert report.ok, report.describe()
        assert report.satisfied and report.violations == []

    def test_report_roundtrips_to_json(self, tmp_path):
        report = run_scenario(get_scenario("truetime-epsilon-sweep"),
                              backend="sim", trace_dir=str(tmp_path))
        assert report.ok, report.describe()
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["scenario"] == "truetime-epsilon-sweep"
        assert payload["ok"] is True


# --------------------------------------------------------------------------- #
# run_scenario: live backend (real asyncio TCP on ephemeral ports)
# --------------------------------------------------------------------------- #
class TestRunScenarioLive:
    def test_gryff_smoke_live(self, tmp_path):
        report = run_scenario(get_scenario("gryff-smoke"), backend="live",
                              trace_dir=str(tmp_path))
        assert report.ok, report.describe()
        assert report.backend == "live"
        assert report.ops > 0
        assert report.recoveries and all(r.matches for r in report.recoveries)

    def test_spanner_smoke_live(self, tmp_path):
        report = run_scenario(get_scenario("spanner-smoke"), backend="live",
                              trace_dir=str(tmp_path))
        assert report.ok, report.describe()
        assert report.recoveries and all(r.matches for r in report.recoveries)


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestChaosCli:
    def test_list_prints_the_catalog(self, capsys):
        assert cli_main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in TestCatalog.REQUIRED:
            assert name in out

    def test_run_scenario_writes_a_json_report(self, tmp_path, capsys):
        verdict = str(tmp_path / "report.json")
        code = cli_main(["chaos", "--scenario", "replica-crash-restart",
                         "--backend", "sim", "--trace-dir", str(tmp_path),
                         "--json", verdict])
        assert code == 0
        assert "OK" in capsys.readouterr().out
        with open(verdict) as handle:
            reports = json.load(handle)
        assert reports[0]["scenario"] == "replica-crash-restart"
        assert reports[0]["ok"] is True
