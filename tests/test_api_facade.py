"""Unit tests for the unified client API (:mod:`repro.api`).

Covers the consistency-level matrix and capability negotiation, backend
spec parsing, the session operation surface on both sim backends, session
context tokens, and the hoisted :class:`SessionRecorder` bookkeeping.
"""

import pytest

from repro.api import (
    CapabilityError,
    ConsistencyLevel,
    GryffSession,
    InvalidSessionToken,
    SessionRecorder,
    SpannerSession,
    Store,
    UnknownBackendError,
    UnsupportedOperationError,
    native_level,
    open_store,
    supported_levels,
)
from repro.api.session import decode_token, encode_token
from repro.gryff.config import GryffConfig, GryffVariant
from repro.spanner.config import SpannerConfig, Variant


# --------------------------------------------------------------------- #
# Levels and negotiation
# --------------------------------------------------------------------- #
class TestLevels:
    def test_parse_accepts_values_names_and_checker_models(self):
        assert ConsistencyLevel.parse("rsc") is ConsistencyLevel.RSC
        assert ConsistencyLevel.parse("LIN") is ConsistencyLevel.LIN
        assert ConsistencyLevel.parse("linearizability") is ConsistencyLevel.LIN
        assert (ConsistencyLevel.parse("strict_serializability")
                is ConsistencyLevel.STRICT_SER)
        assert ConsistencyLevel.parse("strict-ser") is ConsistencyLevel.STRICT_SER
        assert (ConsistencyLevel.parse(ConsistencyLevel.RSS)
                is ConsistencyLevel.RSS)
        with pytest.raises(ValueError, match="unknown consistency level"):
            ConsistencyLevel.parse("serializable-snapshot")

    def test_checker_models(self):
        assert ConsistencyLevel.RSC.checker_model == "rsc"
        assert ConsistencyLevel.RSS.checker_model == "rss"
        assert ConsistencyLevel.LIN.checker_model == "linearizability"
        assert (ConsistencyLevel.STRICT_SER.checker_model
                == "strict_serializability")

    def test_native_levels(self):
        assert native_level("gryff") is ConsistencyLevel.LIN
        assert native_level("gryff-rsc") is ConsistencyLevel.RSC
        assert native_level("spanner") is ConsistencyLevel.STRICT_SER
        assert native_level("spanner-rss") is ConsistencyLevel.RSS

    def test_stronger_systems_honor_weaker_levels_of_same_model(self):
        assert supported_levels("gryff") == {ConsistencyLevel.LIN,
                                             ConsistencyLevel.RSC}
        assert supported_levels("spanner") == {ConsistencyLevel.STRICT_SER,
                                               ConsistencyLevel.RSS}
        assert supported_levels("gryff-rsc") == {ConsistencyLevel.RSC}
        assert supported_levels("spanner-rss") == {ConsistencyLevel.RSS}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            supported_levels("zab")
        with pytest.raises(ValueError, match="unknown protocol"):
            native_level("zab")


#: Every (backend, level) pair and whether negotiation must accept it.
NEGOTIATION_MATRIX = [
    ("gryff", "lin", True),
    ("gryff", "rsc", True),
    ("gryff", "rss", False),
    ("gryff", "strict_ser", False),
    ("gryff-rsc", "rsc", True),
    ("gryff-rsc", "lin", False),
    ("gryff-rsc", "rss", False),
    ("spanner", "strict_ser", True),
    ("spanner", "rss", True),
    ("spanner", "lin", False),
    ("spanner", "rsc", False),
    ("spanner-rss", "rss", True),
    ("spanner-rss", "strict_ser", False),
    ("spanner-rss", "rsc", False),
]


def _store_for(protocol: str) -> Store:
    if protocol.startswith("gryff"):
        variant = (GryffVariant.GRYFF if protocol == "gryff"
                   else GryffVariant.GRYFF_RSC)
        return open_store("sim-gryff", config=GryffConfig(variant=variant))
    variant = Variant.SPANNER if protocol == "spanner" else Variant.SPANNER_RSS
    return open_store("sim-spanner", config=SpannerConfig(variant=variant))


class TestNegotiation:
    @pytest.mark.parametrize("protocol,level,accepted", NEGOTIATION_MATRIX)
    def test_matrix(self, protocol, level, accepted):
        store = _store_for(protocol)
        assert store.protocol == protocol
        if accepted:
            session = store.session(level=level)
            assert session.level is ConsistencyLevel.parse(level)
        else:
            with pytest.raises(CapabilityError, match="cannot honor"):
                store.session(level=level)

    def test_default_level_is_native(self):
        for protocol in ("gryff", "gryff-rsc", "spanner", "spanner-rss"):
            store = _store_for(protocol)
            assert store.session().level is native_level(protocol)


# --------------------------------------------------------------------- #
# open_store spec parsing
# --------------------------------------------------------------------- #
class TestOpenStore:
    def test_sim_specs_default_to_the_headline_variants(self):
        assert open_store("sim-gryff").protocol == "gryff-rsc"
        assert open_store("sim-spanner").protocol == "spanner-rss"

    def test_config_selects_the_variant(self):
        store = open_store("sim-gryff",
                           config=GryffConfig(variant=GryffVariant.GRYFF))
        assert store.protocol == "gryff"
        assert store.native_level is ConsistencyLevel.LIN

    def test_wraps_existing_clusters_and_stores(self):
        from repro.spanner.cluster import SpannerCluster

        cluster = SpannerCluster()
        store = open_store(cluster)
        assert store.cluster is cluster
        assert open_store(store) is store

    def test_live_spec_string(self, tmp_path):
        from repro.net.spec import ClusterSpec

        path = str(tmp_path / "cluster.json")
        ClusterSpec.gryff(num_replicas=3, base_port=0).save(path)
        store = open_store(f"live:{path}")
        assert store.protocol == "gryff-rsc"
        assert store.supported_levels == {ConsistencyLevel.RSC}
        with pytest.raises(CapabilityError):
            store.session(level="strict_ser")

    def test_unknown_spec_rejected(self):
        with pytest.raises(UnknownBackendError):
            open_store("sim-zab")
        with pytest.raises(UnknownBackendError):
            open_store(42)

    def test_sim_stores_own_their_capture_objects(self):
        from repro.core.history import History

        with pytest.raises(ValueError, match="own their history"):
            open_store("sim-gryff", history=History())

    def test_ignored_kwargs_on_built_backends_are_rejected(self):
        from repro.core.history import History
        from repro.gryff.cluster import GryffCluster

        cluster = GryffCluster()
        with pytest.raises(ValueError, match="history.*GryffCluster"):
            open_store(cluster, history=History())
        store = open_store(cluster)
        with pytest.raises(ValueError, match="config"):
            open_store(store, config=GryffConfig())


# --------------------------------------------------------------------- #
# Session surface
# --------------------------------------------------------------------- #
class TestGryffSessionSurface:
    def test_txn_honors_only_single_blind_writes(self):
        store = open_store("sim-gryff")
        session = store.session("CA", name="w")
        results = []

        def workload():
            reads, writes, carstamp = yield from session.txn(
                [], lambda _reads: {"k": "v"})
            results.append((reads, writes, carstamp))
            value = yield from session.read("k")
            results.append(value)

        store.spawn(workload())
        store.run()
        (reads, writes, carstamp), value = results
        assert reads == {} and writes == {"k": "v"} and value == "v"
        assert carstamp.writer == "w"

    def test_txn_rejects_read_sets_and_multi_key_writes(self):
        session = open_store("sim-gryff").session("CA")
        with pytest.raises(UnsupportedOperationError, match="read sets"):
            session.txn(["a"], lambda reads: {"a": 1})
        with pytest.raises(UnsupportedOperationError, match="multi-key txn"):
            session.txn([], lambda reads: {"a": 1, "b": 2})

    def test_read_only_is_single_key(self):
        store = open_store("sim-gryff")
        session = store.session("CA")
        with pytest.raises(UnsupportedOperationError, match="multi-key read_only"):
            session.read_only(["a", "b"])
        results = []

        def workload():
            yield from session.write("a", 7)
            values = yield from session.read_only(["a"])
            results.append(values)

        store.spawn(workload())
        store.run()
        assert results == [{"a": 7}]

    def test_capability_introspection(self):
        store = open_store("sim-gryff")
        assert store.supports("rmw")
        assert not store.supports("multi_key_txn")
        session = store.session("CA")
        assert session.supports("fence")
        assert not session.supports("multi_key_read_only")


class TestSpannerSessionSurface:
    @pytest.mark.parametrize("mode,params,initial,expected", [
        ("increment", {"amount": 4}, None, 4),
        ("increment", {}, None, 1),
        ("append", {"suffix": "-x"}, None, "-x"),
        ("set", {"new_value": "v2"}, None, "v2"),
    ])
    def test_rmw_modes_match_gryff_semantics(self, mode, params, initial,
                                             expected):
        store = open_store("sim-spanner")
        session = store.session("CA")
        results = []

        def workload():
            old, new = yield from session.rmw("k", mode=mode, **params)
            results.append((old, new))

        store.spawn(workload())
        store.run()
        assert results == [(initial, expected)]

    def test_unknown_rmw_mode_rejected_on_both_backends(self):
        with pytest.raises(ValueError, match="unknown rmw mode"):
            open_store("sim-spanner").session("CA").rmw("k", mode="xor")
        with pytest.raises(ValueError, match="unknown rmw mode"):
            open_store("sim-gryff").session("CA").rmw("k", mode="xor")

    def test_rmw_semantics_are_shared_with_the_gryff_replica(self):
        """One table (core/rmw.py) backs both the replica and the Spanner
        adapter, so cross-backend equivalence is structural."""
        from repro.core.rmw import apply_rmw
        from repro.gryff.replica import GryffReplica

        for payload, old in [({"mode": "increment", "amount": 7}, 3),
                             ({"mode": "append", "suffix": "-x"}, "a"),
                             ({"mode": "set", "new_value": 9}, 1),
                             ({"new_value": 5}, 0)]:       # mode defaults to set
            assert (GryffReplica._apply_rmw_function(payload, old)
                    == apply_rmw(payload.get("mode", "set"), old, payload,
                                 strict=False))

    def test_single_key_read_write_surface(self):
        store = open_store("sim-spanner")
        session = store.session("CA")
        results = []

        def workload():
            commit_ts = yield from session.write("k", "v")
            value = yield from session.read("k")
            results.append((commit_ts, value))

        store.spawn(workload())
        store.run()
        (commit_ts, value), = results
        assert value == "v" and commit_ts > 0


# --------------------------------------------------------------------- #
# Session-context tokens
# --------------------------------------------------------------------- #
class TestSessionTokens:
    def test_spanner_token_round_trip_carries_t_min(self):
        store = open_store("sim-spanner")
        alice = store.session("CA", name="alice")
        bob = store.session("VA", name="bob")

        def workload():
            yield from alice.write("k", "v")

        store.spawn(workload())
        store.run()
        assert alice.t_min > 0
        assert bob.t_min == 0
        bob.resume(alice.session_token())
        assert bob.t_min == alice.t_min
        # Resuming an older context never regresses the session.
        stale = encode_token("spanner", alice.t_min / 2.0)
        bob.resume(stale)
        assert bob.t_min == alice.t_min

    def test_gryff_token_round_trip_carries_dependency(self):
        store = open_store("sim-gryff")
        a = store.session("CA", name="a")
        b = store.session("VA", name="b")
        dependency = {"key": "k", "value": "v", "carstamp": (3, 0, "a")}
        a.client.dependency = dict(dependency)
        token = a.session_token()
        b.resume(token)
        assert b.dependency == dependency
        # An older dependency loses against a newer one already present.
        b.client.dependency = {"key": "k", "value": "v2",
                               "carstamp": (5, 0, "b")}
        b.resume(token)
        assert b.dependency["carstamp"] == (5, 0, "b")

    def test_gryff_cross_key_resume_never_drops_a_constraint(self):
        from repro.api import UnsupportedOperationError

        store = open_store("sim-gryff")
        a = store.session("CA", name="a")
        b = store.session("VA", name="b")
        a.client.dependency = {"key": "y", "value": "vy",
                               "carstamp": (2, 0, "a")}
        token = a.session_token()
        # No pending dependency: the foreign-key context is adopted.
        b.resume(token)
        assert b.dependency["key"] == "y"
        # A pending dependency on a *different* key cannot be silently
        # replaced (carstamps only order one key) — explicit refusal.
        b.client.dependency = {"key": "x", "value": "vx",
                               "carstamp": (7, 0, "b")}
        with pytest.raises(UnsupportedOperationError, match="fence"):
            b.resume(token)
        assert b.dependency["key"] == "x"   # untouched

    def test_empty_gryff_context_is_a_no_op(self):
        store = open_store("sim-gryff")
        a = store.session("CA")
        b = store.session("VA")
        b.resume(a.session_token())
        assert b.dependency is None

    def test_cross_backend_tokens_rejected(self):
        gryff = open_store("sim-gryff").session("CA")
        spanner = open_store("sim-spanner").session("CA")
        with pytest.raises(InvalidSessionToken, match="cannot resume"):
            spanner.resume(gryff.session_token())
        with pytest.raises(InvalidSessionToken, match="cannot resume"):
            gryff.resume(spanner.session_token())

    def test_malformed_tokens_rejected(self):
        session = open_store("sim-gryff").session("CA")
        with pytest.raises(InvalidSessionToken):
            session.resume("not-json{")
        with pytest.raises(InvalidSessionToken):
            session.resume('{"schema": "other/9", "backend": "gryff"}')
        with pytest.raises(InvalidSessionToken):
            decode_token('["a-list"]', "gryff")

    def test_schema_valid_tokens_with_malformed_context_rejected(self):
        gryff = open_store("sim-gryff").session("CA")
        spanner = open_store("sim-spanner").session("CA")
        with pytest.raises(InvalidSessionToken, match="malformed session"):
            spanner.resume(encode_token("spanner", "not-a-timestamp"))
        with pytest.raises(InvalidSessionToken, match="malformed session"):
            spanner.resume(encode_token("spanner", None))
        with pytest.raises(InvalidSessionToken, match="malformed session"):
            gryff.resume(encode_token("gryff", {"value": "v"}))   # no key/carstamp
        with pytest.raises(InvalidSessionToken, match="malformed session"):
            gryff.resume(encode_token("gryff", {"key": "k", "value": "v",
                                                "carstamp": [1]}))


# --------------------------------------------------------------------- #
# SessionRecorder (the hoisted bookkeeping)
# --------------------------------------------------------------------- #
class _FakeEnv:
    def __init__(self):
        self.now = 0.0


class _Observer:
    def __init__(self):
        self.invocations = []
        self.abandoned = []

    def on_invocation(self, process, invoked_at):
        self.invocations.append((process, invoked_at))

    def on_abandoned(self, process, at_time):
        self.abandoned.append((process, at_time))


class _Host(SessionRecorder):
    def __init__(self, history=None, recorder=None, record_history=True):
        self.env = _FakeEnv()
        self.name = "host"
        self._init_recording(history, recorder, record_history)


class TestSessionRecorder:
    def test_creates_fresh_history_and_recorder(self):
        host = _Host()
        assert len(host.history) == 0
        assert host.recorder.count() == 0

    def test_record_appends_and_samples(self):
        from repro.core.events import Operation

        host = _Host()
        host.env.now = 12.0
        op = Operation.write("host", "k", "v", invoked_at=2.0,
                             responded_at=12.0)
        host._record(op, "write", 2.0)
        assert host.history.operations() == [op]
        assert host.recorder.samples("write") == [10.0]

    def test_record_history_false_still_samples_latency(self):
        from repro.core.events import Operation

        host = _Host(record_history=False)
        host.env.now = 5.0
        host._record(Operation.write("host", "k", "v", invoked_at=1.0,
                                     responded_at=5.0), "write", 1.0)
        assert len(host.history) == 0
        assert host.recorder.count("write") == 1

    def test_invocations_and_abandons_reach_observers(self):
        host = _Host()
        observer = _Observer()
        host.history.attach_observer(observer)
        host._note_invocation(3.0)
        host.env.now = 7.0
        host._note_abandoned()
        assert observer.invocations == [("host", 3.0)]
        assert observer.abandoned == [("host", 7.0)]

    def test_shared_across_protocol_clients(self):
        """Both protocol clients (and the messaging client) inherit the
        one mixin — the satellite's 'delete both private copies'."""
        from repro.apps.messaging import MessageQueueClient
        from repro.gryff.client import GryffClient
        from repro.spanner.client import SpannerClient

        for cls in (GryffClient, SpannerClient, MessageQueueClient):
            assert issubclass(cls, SessionRecorder)
            assert "_note_invocation" not in cls.__dict__
            assert "_record" not in cls.__dict__
            assert "_note_abandoned" not in cls.__dict__
