"""Unit tests for sequential specifications."""

import pytest

from repro.core.events import Operation
from repro.core.specification import (
    CompositeSpec,
    FifoQueueSpec,
    RegisterSpec,
    TransactionalKVSpec,
    legal_sequence,
)


def test_register_read_write():
    spec = RegisterSpec()
    ops = [
        Operation.read("P", "x", None),
        Operation.write("P", "x", 1),
        Operation.read("P", "x", 1),
    ]
    assert spec.legal(ops)
    bad = [Operation.read("P", "x", 7)]
    assert not spec.legal(bad)


def test_register_initial_values():
    spec = RegisterSpec(initial={"x": 42})
    assert spec.legal([Operation.read("P", "x", 42)])
    assert not spec.legal([Operation.read("P", "x", None)])


def test_register_rmw():
    spec = RegisterSpec(initial={"c": 0})
    ops = [
        Operation.rmw("P", "c", observed=0, new_value=1),
        Operation.rmw("P", "c", observed=1, new_value=2),
        Operation.read("P", "c", 2),
    ]
    assert spec.legal(ops)
    stale = [Operation.rmw("P", "c", observed=5, new_value=6)]
    assert not spec.legal(stale)


def test_register_rejects_transactions():
    spec = RegisterSpec()
    assert not spec.legal([Operation.ro_txn("P", {"x": None})])


def test_transactional_kv_reads_and_writes():
    spec = TransactionalKVSpec(initial={"x": 0})
    ops = [
        Operation.ro_txn("P", {"x": 0}),
        Operation.rw_txn("P", read_set={"x": 0}, write_set={"x": 1, "y": 2}),
        Operation.ro_txn("P", {"x": 1, "y": 2}),
    ]
    assert spec.legal(ops)


def test_transactional_kv_detects_stale_txn_reads():
    spec = TransactionalKVSpec()
    ops = [
        Operation.rw_txn("P", read_set={}, write_set={"x": 1}),
        Operation.ro_txn("P", {"x": None}),
    ]
    assert not spec.legal(ops)


def test_transactional_kv_allows_plain_ops():
    spec = TransactionalKVSpec()
    ops = [
        Operation.write("P", "x", 3),
        Operation.read("P", "x", 3),
        Operation.fence("P"),
    ]
    assert spec.legal(ops)


def test_fifo_queue_order():
    spec = FifoQueueSpec()
    ops = [
        Operation.enqueue("P", "q", "a"),
        Operation.enqueue("P", "q", "b"),
        Operation.dequeue("P", "q", "a"),
        Operation.dequeue("P", "q", "b"),
        Operation.dequeue("P", "q", None),
    ]
    assert spec.legal(ops)


def test_fifo_queue_rejects_out_of_order():
    spec = FifoQueueSpec()
    ops = [
        Operation.enqueue("P", "q", "a"),
        Operation.enqueue("P", "q", "b"),
        Operation.dequeue("P", "q", "b"),
    ]
    assert not spec.legal(ops)


def test_fifo_queue_empty_dequeue_must_return_none():
    spec = FifoQueueSpec()
    assert spec.legal([Operation.dequeue("P", "q", None)])
    assert not spec.legal([Operation.dequeue("P", "q", "ghost")])


def test_composite_spec_routes_by_service():
    spec = CompositeSpec({"kv": TransactionalKVSpec(), "queue": FifoQueueSpec()})
    ops = [
        Operation.rw_txn("P", read_set={}, write_set={"photo": "blob"}, service="kv"),
        Operation.enqueue("P", "jobs", "photo", service="queue"),
        Operation.dequeue("W", "jobs", "photo", service="queue"),
        Operation.ro_txn("W", {"photo": "blob"}, service="kv"),
    ]
    assert spec.legal(ops)


def test_composite_spec_rejects_unknown_service():
    spec = CompositeSpec({"kv": RegisterSpec()})
    assert not spec.legal([Operation.read("P", "x", None, service="mystery")])


def test_composite_spec_requires_services():
    with pytest.raises(ValueError):
        CompositeSpec({})


def test_legal_sequence_helper():
    assert legal_sequence(RegisterSpec(), [Operation.write("P", "x", 1)])


def test_apply_does_not_mutate_input_state():
    spec = RegisterSpec()
    state = spec.initial_state()
    spec.apply(state, Operation.write("P", "x", 1))
    assert state == {}

    txn_spec = TransactionalKVSpec()
    txn_state = txn_spec.initial_state()
    txn_spec.apply(txn_state, Operation.rw_txn("P", read_set={}, write_set={"x": 1}))
    assert txn_state == {}
