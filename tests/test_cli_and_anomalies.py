"""Tests for the command-line interface and the anomaly-window analysis."""

import json

import pytest

from repro.bench.anomalies import (
    MissWindowReport,
    gryff_completed_write_misses,
    spanner_completed_write_misses,
    spanner_in_flight_miss_windows,
)
from repro.bench.gryff_experiments import run_ycsb_experiment
from repro.bench.spanner_experiments import run_retwis_experiment
from repro.cli import build_parser, main
from repro.core.events import Operation
from repro.core.history import History
from repro.gryff.config import GryffVariant
from repro.spanner.config import Variant


# --------------------------------------------------------------------- #
# Anomaly analysis on hand-built histories
# --------------------------------------------------------------------- #
def test_miss_window_report_empty_history():
    report = spanner_in_flight_miss_windows(History())
    assert report.reads_measured == 0
    assert report.misses == 0
    assert report.max_window_ms == 0.0


def test_miss_window_measures_in_flight_write_lifetime():
    history = History()
    # An in-flight write (commits at 500) whose value a concurrent RO misses.
    history.add(Operation.rw_txn("w", read_set={}, write_set={"x": "new"},
                                 invoked_at=0, responded_at=500, commit_ts=80.0))
    history.add(Operation.ro_txn("r", read_set={"x": None},
                                 invoked_at=50, responded_at=100, snapshot_ts=10.0))
    report = spanner_in_flight_miss_windows(history)
    assert report.misses == 1
    assert report.max_window_ms == 400.0
    assert report.summary_rows()[0][1] == 1  # one read measured


def test_miss_window_ignores_observed_and_later_writes():
    history = History()
    history.add(Operation.rw_txn("w", read_set={}, write_set={"x": "new"},
                                 invoked_at=0, responded_at=500, commit_ts=80.0))
    # This read observes the write, so there is no miss.
    history.add(Operation.ro_txn("r", read_set={"x": "new"},
                                 invoked_at=50, responded_at=100, snapshot_ts=80.0))
    # This write starts after the read finished: not a miss either.
    history.add(Operation.rw_txn("w2", read_set={}, write_set={"x": "newer"},
                                 invoked_at=200, responded_at=700, commit_ts=300.0))
    report = spanner_in_flight_miss_windows(history)
    assert report.misses == 0


def test_spanner_completed_write_miss_detection():
    history = History()
    history.add(Operation.rw_txn("w", read_set={}, write_set={"x": "new"},
                                 invoked_at=0, responded_at=10, commit_ts=5.0))
    history.add(Operation.ro_txn("r", read_set={"x": None},
                                 invoked_at=20, responded_at=30, snapshot_ts=1.0))
    assert spanner_completed_write_misses(history) == 1
    ok = History()
    ok.add(Operation.rw_txn("w", read_set={}, write_set={"x": "new"},
                            invoked_at=0, responded_at=10, commit_ts=5.0))
    ok.add(Operation.ro_txn("r", read_set={"x": "new"},
                            invoked_at=20, responded_at=30, snapshot_ts=5.0))
    assert spanner_completed_write_misses(ok) == 0


def test_gryff_completed_write_miss_detection():
    history = History()
    history.add(Operation.write("w", "x", "v1", invoked_at=0, responded_at=10,
                                carstamp=(1, 0, "w")))
    history.add(Operation.read("r", "x", None, invoked_at=20, responded_at=30,
                               carstamp=(0, 0, "")))
    assert gryff_completed_write_misses(history) == 1
    ok = History()
    ok.add(Operation.write("w", "x", "v1", invoked_at=0, responded_at=10,
                           carstamp=(1, 0, "w")))
    ok.add(Operation.read("r", "x", "v1", invoked_at=20, responded_at=30,
                          carstamp=(1, 0, "w")))
    assert gryff_completed_write_misses(ok) == 0


# --------------------------------------------------------------------- #
# Anomaly analysis on simulated runs
# --------------------------------------------------------------------- #
def test_simulated_rss_run_has_no_completed_write_misses():
    result = run_retwis_experiment(
        Variant.SPANNER_RSS, zipf_skew=0.9, duration_ms=2_500.0,
        clients_per_site=2, session_arrival_rate_per_sec=2.0,
        num_keys=100, seed=19, record_history=True, check_consistency=True,
    )
    assert result.consistency_ok is True
    assert spanner_completed_write_misses(result.history) == 0
    report = spanner_in_flight_miss_windows(result.history)
    if report.misses:
        # The anomaly window never outlives the longest read-write txn.
        assert report.max_window_ms <= result.rw_percentiles().maximum + 1.0


def test_simulated_rsc_run_has_no_completed_write_misses():
    result = run_ycsb_experiment(
        GryffVariant.GRYFF_RSC, write_ratio=0.5, conflict_rate=0.5,
        num_clients=6, duration_ms=2_000.0, seed=19,
        record_history=True, check_consistency=True,
    )
    assert result.consistency_ok is True
    assert gryff_completed_write_misses(result.history) == 0


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_parser_lists_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("table1", "appendix-a", "figure5", "figure6", "figure7",
                    "overhead", "anomalies"):
        assert command in text


def test_cli_table1(capsys, tmp_path):
    out_file = tmp_path / "table1.json"
    code = main(["table1", "--json", str(out_file)])
    captured = capsys.readouterr()
    assert code == 0
    assert "Table 1" in captured.out
    data = json.loads(out_file.read_text())
    assert data["rss"]["I2"] == "yes"


def test_cli_appendix_a(capsys):
    code = main(["appendix-a"])
    captured = capsys.readouterr()
    assert code == 0
    assert "figure_9" in captured.out


def test_cli_figure5_small(capsys, tmp_path):
    out_file = tmp_path / "fig5.json"
    code = main([
        "figure5", "--skew", "0.7", "--duration-ms", "2000",
        "--clients-per-site", "2", "--num-keys", "300",
        "--json", str(out_file),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "Figure 5" in captured.out
    rows = json.loads(out_file.read_text())
    assert len(rows) >= 3


def test_cli_figure7_small(capsys):
    code = main(["figure7", "--conflict-rate", "0.25", "--write-ratios", "0.3",
                 "--duration-ms", "2000"])
    captured = capsys.readouterr()
    assert code == 0
    assert "Figure 7" in captured.out


def test_cli_overhead_small(capsys):
    code = main(["overhead", "--duration-ms", "400"])
    captured = capsys.readouterr()
    assert code == 0
    assert "overhead" in captured.out.lower()


def test_cli_anomalies_small(capsys):
    code = main(["anomalies", "--duration-ms", "1500", "--clients-per-site", "2",
                 "--num-keys", "200", "--skew", "0.8"])
    captured = capsys.readouterr()
    assert code == 0
    assert "Anomaly windows" in captured.out


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
