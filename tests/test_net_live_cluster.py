"""End-to-end live cluster runs over real asyncio TCP on localhost.

These tests bind ephemeral ports (port 0 in the spec), so they are safe to
run in parallel with anything else on the machine.
"""

import asyncio
import json

import pytest

from repro.cli import main as cli_main
from repro.net.check import check_trace, default_model_for
from repro.net.cluster import LiveProcess, serve_forever
from repro.net.load import run_load
from repro.net.recorder import read_trace
from repro.net.spec import ClusterSpec
from repro.net.wire import WireError, encode_frame, message_to_frame, read_frame
from repro.sim.network import Message


# --------------------------------------------------------------------------- #
# Wire codec
# --------------------------------------------------------------------------- #
class TestWireCodec:
    def test_frame_round_trip(self):
        async def scenario():
            message = Message(src="a", dst="b", kind="read1",
                              payload={"key": "x", "carstamp": (1, 0, "w")},
                              send_time=12.5, msg_id=3)
            frame = encode_frame(message_to_frame(message))
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            record = await read_frame(reader)
            assert record["src"] == "a" and record["kind"] == "read1"
            assert record["payload"]["carstamp"] == [1, 0, "w"]
            assert await read_frame(reader) is None   # clean EOF

        asyncio.run(scenario())

    def test_truncated_frame_raises(self):
        async def scenario():
            frame = encode_frame({"v": 1})
            reader = asyncio.StreamReader()
            reader.feed_data(frame[:-2])
            reader.feed_eof()
            with pytest.raises(WireError):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_oversized_frame_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff")
            reader.feed_eof()
            with pytest.raises(WireError):
                await read_frame(reader)

        asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# Cluster spec
# --------------------------------------------------------------------------- #
class TestClusterSpec:
    def test_json_round_trip(self, tmp_path):
        spec = ClusterSpec.gryff(num_replicas=3, base_port=9100)
        path = str(tmp_path / "cluster.json")
        spec.save(path)
        loaded = ClusterSpec.load(path)
        assert loaded.protocol == "gryff-rsc"
        assert list(loaded.nodes) == ["replica0", "replica1", "replica2"]
        assert loaded.nodes["replica1"].port == 9101
        assert loaded.epoch == spec.epoch

    def test_gryff_config_matches_node_names(self):
        spec = ClusterSpec.gryff(num_replicas=3)
        config = spec.gryff_config()
        assert config.replica_names() == spec.server_names()
        assert config.quorum_size == 2

    def test_spanner_config_single_site(self):
        spec = ClusterSpec.spanner(num_shards=2,
                                   params={"truetime_epsilon_ms": 3.0})
        config = spec.spanner_config()
        assert config.num_shards == 2
        assert config.truetime_epsilon_ms == 3.0
        # Localhost deployments estimate t_ee with the single-DC matrix.
        assert config.latency_matrix().rtt("local", "local") == pytest.approx(0.2)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(protocol="zab", nodes={})


# --------------------------------------------------------------------------- #
# Live Gryff-RSC
# --------------------------------------------------------------------------- #
def _run_gryff_live(tmp_path, variant="gryff-rsc", ops_per_client=6,
                    num_clients=3):
    trace_path = str(tmp_path / "gryff.jsonl")

    async def scenario():
        spec = ClusterSpec.gryff(num_replicas=3, base_port=0, variant=variant)
        server = LiveProcess(spec)
        await server.start()
        try:
            summary = await run_load(
                spec, num_clients=num_clients, duration_ms=None,
                ops_per_client=ops_per_client, write_ratio=0.5,
                conflict_rate=0.4, seed=11, trace_path=trace_path)
        finally:
            await server.stop()
        return summary, server

    summary, server = asyncio.run(scenario())
    return summary, server, trace_path


class TestLiveGryff:
    def test_three_replica_rsc_end_to_end(self, tmp_path):
        summary, server, trace_path = _run_gryff_live(tmp_path)
        assert summary["ops"] == 18
        assert summary["throughput_ops_per_s"] > 0
        stats = server.node_stats()
        assert sum(s["reads"] + s["write2"] for s in stats.values()) > 0

        meta, history = read_trace(trace_path)
        assert meta["protocol"] == "gryff-rsc"
        assert len(history) == 18
        assert history.is_well_formed()
        result = check_trace(history, meta["protocol"])
        assert result.model == "rsc"
        assert result, result.reason

    def test_linearizable_gryff_variant(self, tmp_path):
        summary, _, trace_path = _run_gryff_live(tmp_path, variant="gryff",
                                                 ops_per_client=4,
                                                 num_clients=2)
        assert summary["ops"] == 8
        meta, history = read_trace(trace_path)
        result = check_trace(history, "gryff")
        assert result.model == "linearizability"
        assert result, result.reason

    def test_client_retries_until_server_is_up(self, tmp_path):
        """Reconnect/backoff: load starts before the listeners exist."""

        async def scenario():
            spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
            server = LiveProcess(spec)
            # Pre-bind to fix the ports, then close and delay the restart, so
            # the client's first connection attempts are refused.
            await server.start()
            await server.stop()
            restarted = LiveProcess(spec)

            async def delayed_start():
                await asyncio.sleep(0.3)
                await restarted.start()

            starter = asyncio.ensure_future(delayed_start())
            try:
                summary = await run_load(spec, num_clients=1, duration_ms=None,
                                         ops_per_client=2, write_ratio=1.0,
                                         conflict_rate=0.0, seed=5)
            finally:
                await starter
                await restarted.stop()
            return summary

        summary = asyncio.run(scenario())
        assert summary["ops"] == 2


# --------------------------------------------------------------------------- #
# Live Spanner-RSS
# --------------------------------------------------------------------------- #
class TestLiveSpanner:
    def test_two_shard_rss_end_to_end(self, tmp_path):
        trace_path = str(tmp_path / "spanner.jsonl")

        async def scenario():
            spec = ClusterSpec.spanner(num_shards=2, base_port=0,
                                       params={"truetime_epsilon_ms": 1.0})
            server = LiveProcess(spec)
            await server.start()
            try:
                summary = await run_load(
                    spec, num_clients=2, duration_ms=None, ops_per_client=5,
                    write_ratio=0.5, conflict_rate=0.4, seed=3,
                    trace_path=trace_path)
            finally:
                await server.stop()
            return summary, server.node_stats()

        summary, stats = asyncio.run(scenario())
        assert summary["ops"] == 10
        assert set(summary["categories"]) <= {"ro", "rw"}
        assert sum(s["commits"] for s in stats.values()) > 0

        meta, history = read_trace(trace_path)
        assert meta["protocol"] == "spanner-rss"
        result = check_trace(history, "spanner-rss")
        assert result.model == "rss"
        assert result, result.reason
        # Transactions carry their protocol witness data through the trace.
        assert all("commit_ts" in op.meta or "snapshot_ts" in op.meta
                   for op in history)

    def test_retwis_workload_on_spanner(self, tmp_path):
        async def scenario():
            spec = ClusterSpec.spanner(num_shards=2, base_port=0,
                                       params={"truetime_epsilon_ms": 1.0})
            server = LiveProcess(spec)
            await server.start()
            try:
                summary = await run_load(spec, num_clients=2, duration_ms=None,
                                         ops_per_client=3, workload="retwis",
                                         num_keys=100, seed=9)
            finally:
                await server.stop()
            return summary

        summary = asyncio.run(scenario())
        assert summary["ops"] >= 6   # rw retries may add latency samples


# --------------------------------------------------------------------------- #
# serve_forever and the CLI surface
# --------------------------------------------------------------------------- #
class TestServeAndCli:
    def test_serve_forever_clean_stop(self, capsys):
        async def scenario():
            spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
            stop = asyncio.Event()

            async def stopper():
                await asyncio.sleep(0.1)
                stop.set()

            task = asyncio.ensure_future(stopper())
            code = await serve_forever(spec, stop_event=stop)
            await task
            return code

        assert asyncio.run(scenario()) == 0
        output = capsys.readouterr().out
        assert "repro-serve ready" in output
        assert "repro-serve stopped" in output

    def test_init_config_cli(self, tmp_path, capsys):
        out = str(tmp_path / "cluster.json")
        code = cli_main(["init-config", "--protocol", "spanner-rss",
                         "--shards", "2", "--base-port", "9310",
                         "--out", out])
        assert code == 0
        spec = ClusterSpec.load(out)
        assert spec.protocol == "spanner-rss"
        assert len(spec.nodes) == 2

    def test_live_check_cli(self, tmp_path, capsys):
        _, _, trace_path = _run_gryff_live(tmp_path, ops_per_client=3,
                                           num_clients=2)
        verdict_path = str(tmp_path / "verdict.json")
        code = cli_main(["live-check", trace_path, "--json", verdict_path])
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out
        with open(verdict_path) as handle:
            verdict = json.load(handle)
        assert verdict["model"] == "rsc" and verdict["satisfied"] is True

    def test_live_check_cli_detects_violation(self, tmp_path, capsys):
        """A forged trace with an impossible read must fail the check."""
        import io
        from repro.core.events import Operation
        from repro.core.history import History

        history = History()
        history.add(Operation.write("p1", "x", "v1", invoked_at=0.0,
                                    responded_at=1.0, carstamp=(1, 0, "p1")))
        # Reads a value nobody wrote, with a newer carstamp: illegal.
        history.add(Operation.read("p2", "x", "ghost", invoked_at=2.0,
                                   responded_at=3.0, carstamp=(2, 0, "p9")))
        trace = str(tmp_path / "bad.jsonl")
        with open(trace, "w") as handle:
            handle.write('{"type":"meta","protocol":"gryff-rsc"}\n')
            history.to_jsonl(handle)
        code = cli_main(["live-check", trace])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_live_check_cli_unknown_protocol_header(self, tmp_path, capsys):
        trace = str(tmp_path / "foreign.jsonl")
        with open(trace, "w") as handle:
            handle.write('{"type":"meta","protocol":"paxos-kv"}\n')
        code = cli_main(["live-check", trace])
        assert code == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_truncated_live_trace_still_loads(self, tmp_path):
        """Chopping the trace mid-record (a crashed load process) loses only
        the torn record; the complete prefix still parses and checks run.
        (The verdict itself may flag the truncation — a read can observe a
        write whose record was torn off — which is the checker's job.)"""
        _, _, trace_path = _run_gryff_live(tmp_path, ops_per_client=3,
                                           num_clients=2)
        with open(trace_path, "r") as handle:
            text = handle.read()
        torn = str(tmp_path / "torn.jsonl")
        with open(torn, "w") as handle:
            handle.write(text[: int(len(text) * 0.8)])
        meta, history = read_trace(torn)
        assert meta["protocol"] == "gryff-rsc"
        assert 0 < len(history) < 6
        assert history.is_well_formed()
        check_trace(history, meta["protocol"])   # must not raise

    def test_default_models(self):
        assert default_model_for("gryff") == "linearizability"
        assert default_model_for("gryff-rsc") == "rsc"
        assert default_model_for("spanner") == "strict_serializability"
        assert default_model_for("spanner-rss") == "rss"


def test_live_check_honors_the_declared_level_in_the_trace_meta(tmp_path):
    """A trace captured with `repro load --level rsc` against a LIN-native
    gryff cluster must be validated offline against rsc (the level the run
    declared and inline-checked), not the protocol's stricter default."""
    import json as _json

    from repro.core.events import Operation
    from repro.core.history import History

    history = History()
    history.add(Operation.write("p1", "x", "v1", invoked_at=0.0,
                                responded_at=1.0, carstamp=(1, 0, "p1")))
    trace = str(tmp_path / "declared.jsonl")
    with open(trace, "w") as handle:
        handle.write('{"type":"meta","protocol":"gryff","level":"rsc"}\n')
        history.to_jsonl(handle)
    verdict_path = str(tmp_path / "verdict.json")
    assert cli_main(["live-check", trace, "--json", verdict_path]) == 0
    with open(verdict_path) as handle:
        verdict = _json.load(handle)
    assert verdict["model"] == "rsc"          # declared level wins
    # An explicit --model still overrides the recorded declaration.
    assert cli_main(["live-check", trace, "--model", "linearizability",
                     "--json", verdict_path]) == 0
    with open(verdict_path) as handle:
        assert _json.load(handle)["model"] == "linearizability"
