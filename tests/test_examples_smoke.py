"""Examples smoke: every script in ``examples/`` runs headless.

Each example is executed in a subprocess with ``-W error::DeprecationWarning``
so a traceback *or* a deprecation warning triggered from repository code
fails the test — the examples are the public face of the API and must stay
on the current (non-deprecated) surface.  The CI ``examples-smoke`` job runs
the same matrix.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: script name → argv (short durations keep the sims quick; scripts without
#: knobs run their defaults).
EXAMPLE_ARGS = {
    "quickstart.py": [],
    "consistency_models.py": [],
    "composition_librss.py": [],
    "photo_sharing_app.py": [],
    "gryff_read_latency.py": ["0.10", "400"],
    "spanner_tail_latency.py": ["0.7", "400"],
}


def test_every_example_is_covered():
    """A new example script must be added to the smoke matrix."""
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS)


@pytest.mark.parametrize("script", sorted(EXAMPLE_ARGS))
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning",
         str(EXAMPLES / script), *EXAMPLE_ARGS[script]],
        capture_output=True, text=True, timeout=600, env=env,
        cwd=str(REPO))
    assert result.returncode == 0, (
        f"{script} failed (exit {result.returncode})\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
    assert "Traceback" not in result.stderr
