"""Unit tests for witness-based checking."""

import pytest

from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import RegisterSpec, TransactionalKVSpec
from repro.core.checkers import check_with_witness
from repro.core.checkers.witness import order_by_timestamp


def history_with_timestamps():
    h = History()
    w1 = h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": 1},
                                invoked_at=0, responded_at=10, commit_ts=5))
    ro = h.add(Operation.ro_txn("P2", read_set={"a": 1},
                                invoked_at=20, responded_at=30, snapshot_ts=5))
    w2 = h.add(Operation.rw_txn("P1", read_set={"a": 1}, write_set={"a": 2},
                                invoked_at=40, responded_at=50, commit_ts=45))
    return h, [w1, ro, w2]


def timestamp_key(op):
    ts = op.meta.get("commit_ts", op.meta.get("snapshot_ts", 0.0))
    return (ts, 0 if op.is_mutation else 1, op.invoked_at, op.op_id)


def test_witness_accepts_valid_order():
    h, order = history_with_timestamps()
    result = check_with_witness(h, order, model="rss", spec=TransactionalKVSpec())
    assert result.satisfied, result.reason
    strict = check_with_witness(h, order, model="strict_serializability",
                                spec=TransactionalKVSpec())
    assert strict.satisfied, strict.reason


def test_order_by_timestamp_builds_same_order():
    h, order = history_with_timestamps()
    built = order_by_timestamp(h, timestamp_key)
    assert [op.op_id for op in built] == [op.op_id for op in order]


def test_witness_rejects_illegal_order():
    h, order = history_with_timestamps()
    backwards = list(reversed(order))
    result = check_with_witness(h, backwards, model="rss", spec=TransactionalKVSpec())
    assert not result.satisfied
    assert "legal" in result.reason or "causality" in result.reason


def test_witness_rejects_missing_complete_op():
    h, order = history_with_timestamps()
    result = check_with_witness(h, order[:-1], model="rss", spec=TransactionalKVSpec())
    assert not result.satisfied
    assert "missing" in result.reason


def test_witness_rejects_duplicates_and_foreign_ops():
    h, order = history_with_timestamps()
    dup = order + [order[0]]
    assert not check_with_witness(h, dup, model="rss", spec=TransactionalKVSpec())
    foreign = order + [Operation.read("P9", "zz", None, invoked_at=0, responded_at=1)]
    assert not check_with_witness(h, foreign, model="rss", spec=TransactionalKVSpec())


def test_witness_detects_causality_violation():
    h = History()
    w = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    r = h.add(Operation.read("P1", "x", None, invoked_at=20, responded_at=30))
    # Witness order r, w is legal sequentially (r reads initial value) but
    # violates P1's process order, hence causality.
    result = check_with_witness(h, [r, w], model="rss", spec=RegisterSpec())
    assert not result.satisfied
    assert "causality" in result.reason


def test_witness_detects_regular_constraint_violation():
    h = History()
    w = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    r = h.add(Operation.read("P2", "x", None, invoked_at=20, responded_at=30))
    result = check_with_witness(h, [r, w], model="rsc", spec=RegisterSpec())
    assert not result.satisfied
    assert "real-time" in result.reason
    # Sequential consistency does not impose the constraint.
    ok = check_with_witness(h, [r, w], model="sequential_consistency",
                            spec=RegisterSpec())
    assert ok.satisfied


def test_witness_strict_model_detects_stale_read():
    h = History()
    w = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    r = h.add(Operation.read("P2", "x", None, invoked_at=20, responded_at=30))
    result = check_with_witness(h, [r, w], model="linearizability", spec=RegisterSpec())
    assert not result.satisfied


def test_witness_unknown_model_rejected():
    h, order = history_with_timestamps()
    with pytest.raises(ValueError):
        check_with_witness(h, order, model="bogus", spec=TransactionalKVSpec())


def test_witness_allows_pending_mutation_inclusion():
    h = History()
    pending = h.add(Operation.write("P1", "x", 1, invoked_at=0))
    r = h.add(Operation.read("P2", "x", 1, invoked_at=50, responded_at=60))
    result = check_with_witness(h, [pending, r], model="rsc", spec=RegisterSpec())
    assert result.satisfied, result.reason
