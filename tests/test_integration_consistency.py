"""End-to-end consistency validation of the simulated systems.

These tests run randomized, contended workloads and validate the recorded
histories against the systems' advertised consistency models using the
witness orders from the paper's correctness proofs (Theorems D.5 and D.15):

* Spanner       must be strictly serializable;
* Spanner-RSS   must satisfy regular sequential serializability (and, being
  weaker than strict serializability, its histories must also pass the RSS
  check when produced by Spanner);
* Gryff         must be linearizable;
* Gryff-RSC     must satisfy regular sequential consistency.

They also inject failures (crashed clients with in-flight transactions) and
confirm that consistency still holds for the surviving operations.
"""

import pytest

from repro.bench.gryff_experiments import run_ycsb_experiment
from repro.bench.spanner_experiments import run_retwis_experiment
from repro.gryff.cluster import GryffCluster
from repro.gryff.config import GryffConfig, GryffVariant
from repro.spanner.cluster import SpannerCluster
from repro.spanner.config import SpannerConfig, Variant


SEEDS = [17, 29, 43]


@pytest.mark.parametrize("seed", SEEDS)
def test_spanner_rss_history_satisfies_rss_under_contention(seed):
    result = run_retwis_experiment(
        Variant.SPANNER_RSS, zipf_skew=0.95, duration_ms=2_500.0,
        clients_per_site=2, session_arrival_rate_per_sec=3.0,
        num_keys=50, seed=seed, record_history=True, check_consistency=True,
    )
    assert result.committed > 0
    assert result.consistency_ok is True


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_spanner_history_is_strictly_serializable_under_contention(seed):
    result = run_retwis_experiment(
        Variant.SPANNER, zipf_skew=0.95, duration_ms=2_500.0,
        clients_per_site=2, session_arrival_rate_per_sec=3.0,
        num_keys=50, seed=seed, record_history=True, check_consistency=True,
    )
    assert result.consistency_ok is True


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_gryff_rsc_history_satisfies_rsc_under_contention(seed):
    result = run_ycsb_experiment(
        GryffVariant.GRYFF_RSC, write_ratio=0.5, conflict_rate=0.6,
        num_clients=8, duration_ms=2_500.0, seed=seed,
        record_history=True, check_consistency=True,
    )
    assert result.consistency_ok is True


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_gryff_history_is_linearizable_under_contention(seed):
    result = run_ycsb_experiment(
        GryffVariant.GRYFF, write_ratio=0.5, conflict_rate=0.6,
        num_clients=8, duration_ms=2_500.0, seed=seed,
        record_history=True, check_consistency=True,
    )
    assert result.consistency_ok is True


def test_spanner_variant_strict_history_also_satisfies_rss():
    """Strict serializability implies RSS, so a Spanner history must also
    pass the RSS witness check."""
    config = SpannerConfig(variant=Variant.SPANNER, seed=5)
    cluster = SpannerCluster(config)
    clients = [cluster.new_client(site) for site in ("CA", "VA", "IR")]

    def workload(client, delay, key):
        yield cluster.env.timeout(delay)
        yield from client.read_write_transaction(
            [key], lambda reads: {key: f"{client.name}-{delay}"})
        yield from client.read_only_transaction([key])

    for index, client in enumerate(clients):
        cluster.spawn(workload(client, index * 40, "shared-key"))
    cluster.run()
    assert cluster.check_consistency("strict_serializability").satisfied
    assert cluster.check_consistency("rss").satisfied


# --------------------------------------------------------------------- #
# Failure injection
# --------------------------------------------------------------------- #
def test_spanner_rss_crashed_client_mid_transaction_preserves_consistency():
    cluster = SpannerCluster(SpannerConfig(variant=Variant.SPANNER_RSS, seed=8))
    victim = cluster.new_client("CA", name="victim")
    survivor = cluster.new_client("VA", name="survivor")
    key = "crash-key"

    def victim_workload():
        yield from victim.read_write_transaction([], lambda _reads: {key: "v1"})
        # Start a second transaction and crash before it can finish.
        yield cluster.env.timeout(5)
        victim.stop()

    def crashing_write():
        yield cluster.env.timeout(450)
        try:
            yield from victim.read_write_transaction([], lambda _reads: {key: "v2"})
        except Exception:
            pass

    def survivor_workload():
        for delay in (200, 900, 1600):
            yield cluster.env.timeout(delay)
            yield from survivor.read_only_transaction([key])

    cluster.spawn(victim_workload())
    cluster.spawn(crashing_write())
    cluster.spawn(survivor_workload())
    cluster.run(until=5_000)
    result = cluster.check_consistency()
    assert result.satisfied, result.reason
    # The survivor's reads all observed a consistent value.
    ro_ops = [op for op in cluster.history if op.process == "survivor"]
    assert len(ro_ops) >= 1


def test_gryff_rsc_crashed_replica_minority_still_serves():
    """With five replicas, reads and writes survive the loss of a minority."""
    cluster = GryffCluster(GryffConfig(variant=GryffVariant.GRYFF_RSC, seed=8))
    client = cluster.new_client("CA")
    # Crash two replicas (a minority of five).
    cluster.replicas["replica3"].stop()
    cluster.replicas["replica4"].stop()
    out = {}

    def workload():
        yield from client.write("k", "survives")
        out["value"] = yield from client.read("k")

    cluster.spawn(workload())
    cluster.run(until=10_000)
    assert out["value"] == "survives"
    assert cluster.check_consistency().satisfied


def test_spanner_rw_latency_unaffected_by_variant_in_random_mix():
    """The paper verifies RW latency distributions are identical across
    variants; spot-check medians here."""
    medians = {}
    for variant in (Variant.SPANNER, Variant.SPANNER_RSS):
        result = run_retwis_experiment(
            variant, zipf_skew=0.5, duration_ms=3_000.0, clients_per_site=2,
            session_arrival_rate_per_sec=2.0, num_keys=1_000, seed=21,
        )
        medians[variant] = result.rw_percentiles().p50
    assert medians[Variant.SPANNER] == pytest.approx(
        medians[Variant.SPANNER_RSS], rel=0.15)
