"""Metrics under chaos: instrumented crash/restart and failover scenarios,
scrapeability across restarts, and the zero-overhead (byte-identity) pin
for the uninstrumented path."""

import asyncio

from repro.chaos import get_scenario, run_scenario
from repro.obs import MetricsRegistry, scrape
from repro.obs.monitor import _MetricsThread


def _run_with_registry(name, tmp_path, backend="sim"):
    registry = MetricsRegistry()
    report = run_scenario(get_scenario(name), backend=backend,
                          trace_dir=str(tmp_path), metrics=registry)
    return report, registry


class TestSimChaosMetrics:
    def test_replica_crash_restart_counters_survive_recovery(self, tmp_path):
        report, registry = _run_with_registry("replica-crash-restart",
                                              tmp_path)
        assert report.ok, report.describe()
        # Node collectors read through the cluster's node map, so the
        # restarted replica's fresh object is what a scrape sees — and its
        # recovered stats keep counting from the WAL-restored state.
        ops = registry.get("repro_node_ops_total")
        payload = ops.as_dict([0])["values"]
        assert payload, "no per-node op samples"
        assert sum(payload.values()) > 0
        wal = registry.get("repro_wal_appends_total")
        assert wal is not None and sum(wal.as_dict([0])["values"].values()) > 0
        # WAL append latency was observed on the instrumented WALs.
        lat = registry.get("repro_wal_append_latency_ms")
        assert lat is not None and lat.value(node="replica0") is not None

    def test_fault_gauges_match_the_recorded_timeline(self, tmp_path):
        report, registry = _run_with_registry("replica-crash-restart",
                                              tmp_path)
        assert report.ok, report.describe()
        injected = registry.get("repro_faults_injected_total")
        assert injected.value(effect="dropped") == \
            report.fault_counters["dropped"]
        assert injected.value(effect="delayed") == \
            report.fault_counters["delayed"]
        # The scenario heals/restarts everything it breaks: by the end no
        # fault is installed and the active gauge reads 0.
        assert registry.get("repro_faults_active").value() == 0.0
        installed = registry.get("repro_faults_installed")
        assert installed.value(kind="partitions") == 0

    def test_leader_crash_failover_exposes_lease_fencing(self, tmp_path):
        report, registry = _run_with_registry("leader-crash-failover",
                                              tmp_path)
        assert report.ok, report.describe()
        term = registry.get("repro_lease_term")
        # The crashed leader's shard was re-elected with a higher term.
        terms = term.as_dict([0])["values"]
        assert terms and max(terms.values()) >= 2
        transitions = registry.get("repro_lease_transitions_total")
        assert sum(transitions.as_dict([0])["values"].values()) >= 1

    def test_metrics_stay_scrapeable_across_crash_restart(self, tmp_path):
        """A /metrics endpoint on the shared registry serves before, during
        (collectors may point at a crashed node — skipped, not fatal), and
        after the scenario."""
        registry = MetricsRegistry()
        thread = _MetricsThread(registry, "127.0.0.1", 0)
        port = thread.start_and_wait()
        try:
            before = asyncio.run(scrape("127.0.0.1", port))
            assert before.strip() == ""          # nothing registered yet
            report = run_scenario(get_scenario("replica-crash-restart"),
                                  backend="sim", trace_dir=str(tmp_path),
                                  metrics=registry)
            assert report.ok, report.describe()
            after = asyncio.run(scrape("127.0.0.1", port))
        finally:
            thread.stop()
        assert "repro_node_ops_total" in after
        assert "repro_faults_injected_total" in after
        assert 'effect="dropped"' in after
        health = report.fault_counters["dropped"]
        assert f'repro_faults_injected_total{{effect="dropped"}} {health}' \
            in after


class TestLiveChaosMetrics:
    def test_live_crash_restart_instruments_transport_and_nodes(self,
                                                                tmp_path):
        report, registry = _run_with_registry("gryff-smoke", tmp_path,
                                              backend="live")
        assert report.ok, report.describe()
        messages = registry.get("repro_transport_messages_total")
        values = messages.as_dict([0])["values"]
        assert sum(values.values()) > 0
        wire = registry.get("repro_transport_bytes_total")
        assert sum(wire.as_dict([0])["values"].values()) > 0
        # The client-side transport is instrumented under node="clients".
        assert messages.value(node="clients", direction="out") is not None
        ops = registry.get("repro_node_ops_total")
        assert sum(ops.as_dict([0])["values"].values()) > 0
        # Queue depth gauge drains to zero once the run is over.
        depth = registry.get("repro_transport_queue_depth")
        assert all(v == 0 for v in depth.as_dict([0])["values"].values())


class TestZeroOverheadPin:
    def test_uninstrumented_sim_run_is_byte_identical(self, tmp_path):
        """The metrics=None path must take the exact same RNG draws and
        timeline as an instrumented run: scrape-time collectors observe,
        they never perturb.  Any drift between these two reports means an
        instrumentation hook leaked into the hot path."""
        bare = run_scenario(get_scenario("replica-crash-restart"),
                            backend="sim",
                            trace_dir=str(tmp_path / "bare")).to_dict()
        instrumented = run_scenario(get_scenario("replica-crash-restart"),
                                    backend="sim",
                                    trace_dir=str(tmp_path / "obs"),
                                    metrics=MetricsRegistry()).to_dict()
        bare.pop("trace")
        instrumented.pop("trace")
        assert bare == instrumented

    def test_wal_append_skips_timing_without_observer(self, tmp_path):
        from repro.storage.wal import WriteAheadLog

        wal = WriteAheadLog(str(tmp_path / "n.wal"))
        assert wal.on_append_latency is None
        wal.append({"k": "x", "v": 1})
        observed = []
        wal.on_append_latency = observed.append
        wal.append({"k": "x", "v": 2})
        wal.close()
        assert len(observed) == 1 and observed[0] >= 0.0
