"""Property tests for the sweep-line constraint engine.

The engine's contract is *closure equivalence*: every derivation in
:mod:`repro.core.orders` must emit a subset of its naive quadratic
reference whose transitive closure equals the closure of the reference.
These tests check that contract — plus exact pairwise agreement of the
O(1) ``precedes`` — on randomly generated well-formed histories, including
tie-heavy ones (integer timestamps, zero-duration operations), and check
that ``SerializationSearch`` behaves identically to the seed implementation.
"""

import itertools
import random

import pytest

from repro.bench.perfsuite import synthetic_history
from repro.core import orders
from repro.core.checkers import MODELS, SerializationSearch
from repro.core.checkers._shared import split_operations
from repro.core.events import Operation
from repro.core.examples import all_examples
from repro.core.history import History
from repro.core.relations import RealTimeOrder
from repro.core.specification import RegisterSpec


# --------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------- #
def tie_history(seed, n=40, procs=4, keys=3, stale_reads=False):
    """A well-formed history with many equal timestamps and zero-duration
    operations; with ``stale_reads`` the read results are arbitrary (so the
    history is usually inadmissible under strong models)."""
    rng = random.Random(seed)
    history = History()
    clock = {f"P{i}": 0 for i in range(procs)}
    finished = set()
    counter = 0
    values = [None]
    for _ in range(n):
        live = [p for p in clock if p not in finished]
        if not live:
            break
        process = live[rng.randrange(len(live))]
        start = clock[process] + rng.randrange(0, 3)
        end = start + rng.randrange(0, 3)
        key = f"k{rng.randrange(keys)}"
        pending = rng.random() < 0.08
        if pending or rng.random() < 0.5:
            counter += 1
            value = f"v{counter}"
            values.append(value)
            history.add(Operation.write(process, key, value, invoked_at=start,
                                        responded_at=None if pending else end))
        else:
            result = rng.choice(values) if stale_reads else None
            history.add(Operation.read(process, key, result,
                                       invoked_at=start, responded_at=end))
        if pending:
            finished.add(process)
        else:
            clock[process] = end
    return history


def naive_osc_u(ops, rt):
    return {(o.op_id, w.op_id) for w in ops if w.is_mutation
            for o in ops if o.op_id != w.op_id and rt.precedes(o, w)}


def naive_vv(ops, rt):
    return {(w.op_id, o.op_id) for w in ops if w.is_mutation
            for o in ops if o.op_id != w.op_id and rt.precedes(w, o)}


def _conflict(a, b):
    if a.service != b.service:
        return False
    a_keys = a.keys_read() | a.keys_written()
    b_keys = b.keys_read() | b.keys_written()
    return bool(a_keys & b_keys)


def naive_crdb(ops, rt):
    return {(a.op_id, b.op_id) for a in ops for b in ops
            if a.op_id != b.op_id and _conflict(a, b) and rt.precedes(a, b)}


def assert_closure_equivalent(fast_edges, naive_pairs):
    """``fast ⊆ naive`` and ``closure(fast) ⊇ naive`` (hence closures equal,
    since the naive relation is its own closure-superset)."""
    fast_set = set(fast_edges)
    naive_set = set(naive_pairs)
    assert fast_set <= naive_set, f"spurious edges: {sorted(fast_set - naive_set)[:5]}"
    closure = orders.transitive_closure(fast_set)
    missing = naive_set - closure
    assert not missing, f"uncovered pairs: {sorted(missing)[:5]}"


HISTORIES = (
    [synthetic_history(50, n_processes=5, n_keys=5, seed=s, pending_mutations=2)
     for s in range(6)]
    + [tie_history(s) for s in range(8)]
    + [tie_history(s, stale_reads=True) for s in range(4)]
)


# --------------------------------------------------------------------- #
# Sweep-line engine vs naive quadratic references
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("index", range(len(HISTORIES)))
def test_precedes_matches_naive_exactly(index):
    history = HISTORIES[index]
    history.check_well_formed()
    ops = history.operations()
    rt = RealTimeOrder(history)
    fast = orders.RealTimeIndex(ops)
    for a in ops:
        for b in ops:
            assert fast.precedes(a, b) == rt.precedes(a, b), (a, b)


@pytest.mark.parametrize("index", range(len(HISTORIES)))
def test_real_time_reduction_closure(index):
    history = HISTORIES[index]
    ops = history.operations()
    naive = orders.naive_real_time_edges(history, ops)
    assert_closure_equivalent(orders.real_time_edges(history, ops), naive)


@pytest.mark.parametrize("index", range(len(HISTORIES)))
def test_regular_constraint_closure(index):
    history = HISTORIES[index]
    naive = orders.naive_regular_constraint_edges(history)
    assert_closure_equivalent(orders.regular_constraint_edges(history), naive)


@pytest.mark.parametrize("index", range(len(HISTORIES)))
def test_model_specific_edge_closures(index):
    history = HISTORIES[index]
    ops = history.operations()
    rt = RealTimeOrder(history)
    assert_closure_equivalent(orders.osc_u_edges(ops), naive_osc_u(ops, rt))
    assert_closure_equivalent(orders.vv_regularity_edges(ops), naive_vv(ops, rt))
    assert_closure_equivalent(orders.conflicting_pair_edges(ops), naive_crdb(ops, rt))
    mutations = [op for op in ops if op.is_mutation]
    naive_mut = {(a.op_id, b.op_id) for a in mutations for b in mutations
                 if rt.precedes(a, b)}
    assert_closure_equivalent(orders.mutation_order_edges(ops), naive_mut)


def test_real_time_edges_restricted_subset():
    """The reduction over a subset must stay closed within that subset."""
    history = HISTORIES[0]
    ops = [op for op in history.operations() if op.op_id % 2 == 0]
    naive = orders.naive_real_time_edges(history, ops)
    assert_closure_equivalent(orders.real_time_edges(history, ops), naive)


# --------------------------------------------------------------------- #
# SerializationSearch vs the seed implementation
# --------------------------------------------------------------------- #
def _seed_state_key(state):
    if isinstance(state, dict):
        return tuple(sorted(((repr(k), _seed_state_key(v)) for k, v in state.items())))
    if isinstance(state, (list, tuple)):
        return tuple(_seed_state_key(v) for v in state)
    return repr(state)


def seed_serialization_search(spec, operations, constraints=(),
                              optional_operations=()):
    """Verbatim port of the seed SerializationSearch (reference oracle)."""
    required = list(operations)
    optional = list(optional_operations)
    constraints = list(constraints)

    def search(ops):
        by_id = {op.op_id: op for op in ops}
        included = set(by_id)
        successors = {op_id: set() for op_id in included}
        indegree = {op_id: 0 for op_id in included}
        for a, b in constraints:
            if a in included and b in included and b not in successors[a]:
                successors[a].add(b)
                indegree[b] += 1
        order = []
        failed = set()

        def dfs(state, remaining, indeg):
            if not remaining:
                return True
            memo_key = (frozenset(remaining), _seed_state_key(state))
            if memo_key in failed:
                return False
            ready = [op_id for op_id in remaining if indeg[op_id] == 0]
            for op_id in sorted(ready):
                ok, next_state = spec.apply(state, by_id[op_id])
                if not ok:
                    continue
                remaining.remove(op_id)
                for succ in successors[op_id]:
                    if succ in remaining:
                        indeg[succ] -= 1
                order.append(by_id[op_id])
                if dfs(next_state, remaining, indeg):
                    return True
                order.pop()
                for succ in successors[op_id]:
                    if succ in remaining:
                        indeg[succ] += 1
                remaining.add(op_id)
            failed.add(memo_key)
            return False

        if dfs(spec.initial_state(), set(included), dict(indegree)):
            return list(order)
        return None

    for r in range(len(optional) + 1):
        for subset in itertools.combinations(optional, r):
            witness = search(required + list(subset))
            if witness is not None:
                return witness
    return None


@pytest.mark.parametrize("seed", range(12))
def test_search_agrees_with_seed_implementation(seed):
    history = tie_history(seed, n=8, procs=3, keys=2, stale_reads=True)
    spec = RegisterSpec()
    required, optional = split_operations(history)
    rng = random.Random(seed)
    ops = required + optional
    constraints = orders.real_time_edges(history, ops)
    # Mix in a few random (possibly contradictory) extra constraints.
    for _ in range(3):
        if len(ops) >= 2:
            a, b = rng.sample(ops, 2)
            constraints.append((a.op_id, b.op_id))
    new = SerializationSearch(spec, required, constraints, optional).find()
    reference = seed_serialization_search(spec, required, constraints, optional)
    if reference is None:
        assert new is None
    else:
        assert new is not None
        assert [op.op_id for op in new] == [op.op_id for op in reference]


def test_all_example_verdicts_unchanged():
    """Every checker verdict on the Appendix A / Figure 2 executions must
    match the paper's expectations (the satellite regression gate)."""
    for example in all_examples():
        for model, expected in example.expectations.items():
            result = MODELS[model](example.history, example.spec)
            assert bool(result) == expected, (
                f"{example.name}: {model} returned {bool(result)}, "
                f"paper says {expected}"
            )
