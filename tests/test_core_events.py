"""Unit tests for operations and histories."""

import pytest

from repro.core.events import INITIAL_VALUE, Operation, OpType
from repro.core.history import History


def test_read_write_constructors():
    r = Operation.read("P1", "x", 5, invoked_at=1, responded_at=2)
    w = Operation.write("P2", "x", 7, invoked_at=0, responded_at=3)
    assert r.op_type == OpType.READ and r.result == 5
    assert w.op_type == OpType.WRITE and w.value == 7
    assert r.is_read_only and not r.is_mutation
    assert w.is_mutation and not w.is_read_only
    assert r.is_complete and w.is_complete


def test_rmw_constructor_and_footprint():
    op = Operation.rmw("P1", "k", observed=3, new_value=4)
    assert op.keys_read() == {"k"}
    assert op.keys_written() == {"k"}
    assert op.values_observed() == {"k": 3}
    assert op.values_written() == {"k": 4}
    assert op.is_mutation


def test_txn_constructors_and_footprints():
    ro = Operation.ro_txn("P1", {"a": 1, "b": 2})
    rw = Operation.rw_txn("P2", read_set={"a": 1}, write_set={"b": 9, "c": 10})
    assert ro.is_transaction and ro.is_read_only
    assert rw.is_transaction and rw.is_mutation
    assert ro.keys_read() == {"a", "b"}
    assert rw.keys_written() == {"b", "c"}
    assert rw.values_written() == {"b": 9, "c": 10}


def test_queue_constructors():
    enq = Operation.enqueue("P1", "q1", "job-1")
    deq = Operation.dequeue("P2", "q1", "job-1")
    assert enq.service == "queue" and deq.service == "queue"
    assert enq.is_mutation
    assert deq.values_observed() == {"q1": "job-1"}


def test_conflicts_with():
    w = Operation.rw_txn("P1", read_set={}, write_set={"x": 1})
    ro_hit = Operation.ro_txn("P2", read_set={"x": 1, "y": 2})
    ro_miss = Operation.ro_txn("P3", read_set={"z": 0})
    assert ro_hit.conflicts_with(w)
    assert not ro_miss.conflicts_with(w)
    other_service = Operation.ro_txn("P4", read_set={"x": 1}, service="other")
    assert not other_service.conflicts_with(w)


def test_pending_operation():
    op = Operation.write("P1", "x", 1, invoked_at=5)
    assert not op.is_complete
    assert op.responded_at is None


def test_describe_round_trips_key_info():
    op = Operation.rw_txn("P9", read_set={"a": 1}, write_set={"b": 2},
                          invoked_at=0, responded_at=1)
    text = op.describe()
    assert "P9" in text and "a=1" in text and "b:=2" in text


def test_unique_op_ids():
    ids = {Operation.read("P", "x", 0).op_id for _ in range(100)}
    assert len(ids) == 100


# --------------------------------------------------------------------- #
# History
# --------------------------------------------------------------------- #
def test_history_basic_accessors():
    h = History()
    a = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    b = h.add(Operation.read("P2", "x", 1, invoked_at=2, responded_at=3))
    c = h.add(Operation.read("P1", "x", 1, invoked_at=4))
    assert len(h) == 3
    assert h.get(a.op_id) is a
    assert h.complete() == [a, b]
    assert h.pending() == [c]
    assert h.processes() == ["P1", "P2"]
    assert [op.op_id for op in h.by_process("P1")] == [a.op_id, c.op_id]
    assert h.mutations() == [a]


def test_history_duplicate_rejected():
    h = History()
    op = Operation.read("P1", "x", 0)
    h.add(op)
    with pytest.raises(ValueError):
        h.add(op)


def test_history_writers_of():
    h = History()
    w1 = h.add(Operation.write("P1", "x", "v1", invoked_at=0, responded_at=1))
    h.add(Operation.write("P1", "y", "v1", invoked_at=2, responded_at=3))
    w3 = h.add(Operation.rw_txn("P2", read_set={}, write_set={"x": "v2"},
                                invoked_at=4, responded_at=5))
    assert h.writers_of("x", "v1") == [w1]
    assert h.writers_of("x", "v2") == [w3]
    assert h.writers_of("x", "missing") == []


def test_history_message_edges_require_membership():
    h = History()
    a = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    b = h.add(Operation.read("P2", "x", 1, invoked_at=2, responded_at=3))
    h.add_message_edge(a, b)
    assert len(h.message_edges) == 1
    outsider = Operation.read("P3", "x", 0)
    with pytest.raises(ValueError):
        h.add_message_edge(a, outsider)


def test_history_well_formedness():
    good = History()
    good.add(Operation.read("P1", "x", 0, invoked_at=0, responded_at=1))
    good.add(Operation.read("P1", "x", 0, invoked_at=2, responded_at=3))
    good.check_well_formed()
    assert good.is_well_formed()

    overlapping = History()
    overlapping.add(Operation.read("P1", "x", 0, invoked_at=0, responded_at=5))
    overlapping.add(Operation.read("P1", "x", 0, invoked_at=2, responded_at=7))
    assert not overlapping.is_well_formed()

    pending_then_more = History()
    pending_then_more.add(Operation.read("P1", "x", 0, invoked_at=0))
    pending_then_more.add(Operation.read("P1", "x", 0, invoked_at=2, responded_at=3))
    assert not pending_then_more.is_well_formed()


def test_history_restricted_to_service():
    h = History()
    kv = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    q = h.add(Operation.enqueue("P1", "jobs", "x", invoked_at=2, responded_at=3))
    kv2 = h.add(Operation.read("P2", "x", 1, invoked_at=4, responded_at=5))
    h.add_message_edge(kv, kv2)
    h.add_message_edge(kv, q)
    sub = h.restricted_to_service("kv")
    assert {op.op_id for op in sub} == {kv.op_id, kv2.op_id}
    assert len(sub.message_edges) == 1


def test_history_describe_contains_processes():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    h.add(Operation.read("P2", "x", 1, invoked_at=2, responded_at=3))
    text = h.describe()
    assert "P1" in text and "P2" in text
