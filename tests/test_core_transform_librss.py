"""Unit tests for the Lemma 1 transformation and the libRSS meta-library."""

import pytest

from repro.core.events import Operation
from repro.core.examples import figure_2, figure_10, figure_13
from repro.core.history import History
from repro.core.librss import FenceRecord, LibRSS, ServiceNotRegistered
from repro.core.transform import (
    TransformationError,
    equivalent_per_process,
    transform_to_strict,
    verify_transformation,
)
from repro.core.checkers import check_linearizability, check_strict_serializability


# --------------------------------------------------------------------- #
# Transformation (Lemma 1 / Figure 2)
# --------------------------------------------------------------------- #
def test_figure_2_transformation():
    example = figure_2()
    transformed = transform_to_strict(example.history, spec=example.spec)
    assert equivalent_per_process(example.history, transformed)
    result = verify_transformation(example.history, transformed, example.spec)
    assert result.satisfied, result.reason
    # The original execution is *not* linearizable; the transformed one is.
    assert not check_linearizability(example.history, example.spec)
    assert check_linearizability(transformed, example.spec)


def test_transformation_of_rss_transactional_execution():
    example = figure_10()
    transformed = transform_to_strict(example.history, spec=example.spec)
    assert equivalent_per_process(example.history, transformed)
    assert check_strict_serializability(transformed, example.spec)


def test_transformation_rejects_non_rss_execution():
    example = figure_13()  # stale read: not RSC
    with pytest.raises(TransformationError):
        transform_to_strict(example.history, spec=example.spec)


def test_transformation_with_explicit_serialization():
    h = History()
    w = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=50))
    r = h.add(Operation.read("P2", "x", 1, invoked_at=5, responded_at=10))
    transformed = transform_to_strict(h, serialization=[w, r])
    times = {op.op_id: (op.invoked_at, op.responded_at) for op in transformed}
    assert times[w.op_id][1] < times[r.op_id][0]
    assert check_linearizability(transformed)


def test_transformation_missing_complete_op_rejected():
    h = History()
    w = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=50))
    h.add(Operation.read("P2", "x", 1, invoked_at=5, responded_at=10))
    with pytest.raises(TransformationError):
        transform_to_strict(h, serialization=[w])


def test_transformation_preserves_message_edges():
    h = History()
    a = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    b = h.add(Operation.read("P2", "x", 1, invoked_at=20, responded_at=30))
    h.add_message_edge(a, b)
    transformed = transform_to_strict(h)
    assert len(transformed.message_edges) == 1


# --------------------------------------------------------------------- #
# libRSS
# --------------------------------------------------------------------- #
def drive(generator):
    """Drive a libRSS generator that never yields simulation events."""
    try:
        while True:
            next(generator)
    except StopIteration as stop:
        return stop.value


def test_librss_requires_registration():
    lib = LibRSS()
    with pytest.raises(ServiceNotRegistered):
        drive(lib.start_transaction("client", "kv"))


def test_librss_no_fence_for_same_service():
    lib = LibRSS()
    fenced = []
    lib.register_service("kv", lambda process: fenced.append(("kv", process)))
    drive(lib.start_transaction("c1", "kv"))
    drive(lib.start_transaction("c1", "kv"))
    assert fenced == []
    assert lib.last_service("c1") == "kv"


def test_librss_fences_on_service_switch():
    lib = LibRSS()
    fenced = []
    lib.register_service("kv", lambda process: fenced.append(("kv", process)))
    lib.register_service("queue", lambda process: fenced.append(("queue", process)))
    drive(lib.start_transaction("c1", "kv"))
    drive(lib.start_transaction("c1", "queue"))   # fence at kv
    drive(lib.start_transaction("c1", "queue"))   # no fence
    drive(lib.start_transaction("c1", "kv"))      # fence at queue
    assert fenced == [("kv", "c1"), ("queue", "c1")]
    assert lib.fences_issued("c1") == 2
    assert [record.service for record in lib.fence_log] == ["kv", "queue"]


def test_librss_contexts_are_per_process():
    lib = LibRSS()
    fenced = []
    lib.register_service("kv", lambda process: fenced.append(process))
    lib.register_service("queue", lambda process: fenced.append(process))
    drive(lib.start_transaction("alice", "kv"))
    drive(lib.start_transaction("bob", "queue"))
    assert fenced == []  # different processes, no switches yet
    drive(lib.start_transaction("alice", "queue"))
    assert fenced == ["alice"]


def test_librss_generator_fences_are_driven():
    lib = LibRSS()
    steps = []

    def fence(process):
        steps.append(f"start-{process}")
        yield "simulated-wait"
        steps.append(f"end-{process}")

    lib.register_service("kv", fence)
    lib.register_service("queue", lambda process: None)
    drive(lib.start_transaction("c1", "kv"))
    gen = lib.start_transaction("c1", "queue")
    yielded = next(gen)
    assert yielded == "simulated-wait"
    drive(gen)
    assert steps == ["start-c1", "end-c1"]


def test_librss_external_context_import():
    lib = LibRSS()
    fenced = []
    lib.register_service("kv", lambda process: fenced.append("kv"))
    lib.register_service("queue", lambda process: fenced.append("queue"))
    # A web server handled a request whose context says the last service was
    # the kv store; the worker's next queue interaction must fence the kv.
    lib.observe_external_context("worker", "kv")
    drive(lib.start_transaction("worker", "queue"))
    assert fenced == ["kv"]


def test_librss_unregister():
    lib = LibRSS()
    lib.register_service("kv", lambda process: None)
    lib.unregister_service("kv")
    with pytest.raises(ServiceNotRegistered):
        drive(lib.start_transaction("c1", "kv"))


def test_librss_duplicate_registration_rejected():
    lib = LibRSS()
    lib.register_service("kv", lambda process: None)
    with pytest.raises(ValueError):
        lib.register_service("kv", lambda process: None)
