"""The consistent-hash ring and versioned placement map (`placement/1`).

The map's contract (module docstring of :mod:`repro.fleet.ring`): the
ranges exactly tile ``[0, 2**32)``, every key routes to exactly one group
at every version, and the version is strictly monotonic across mutations.
The property tests drive random ``move`` sequences through the map and
re-check all three invariants at every epoch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.ring import (
    PLACEMENT_SCHEMA,
    POINT_SPACE,
    PlacementMap,
    PlacementRange,
    key_point,
)


class TestKeyPoint:
    def test_deterministic(self):
        assert key_point("alpha") == key_point("alpha")
        assert key_point("alpha", seed=7) == key_point("alpha", seed=7)

    def test_seed_changes_distribution(self):
        keys = [f"key{i}" for i in range(64)]
        assert ([key_point(k, seed=0) for k in keys]
                != [key_point(k, seed=1) for k in keys])

    def test_in_point_space(self):
        for key in ("", "x", "key/with/slashes", "é"):
            assert 0 <= key_point(key) < POINT_SPACE


class TestBuild:
    def test_deterministic_for_same_inputs(self):
        a = PlacementMap.build(["g0", "g1", "g2"], seed=5)
        b = PlacementMap.build(["g0", "g1", "g2"], seed=5)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_every_group_owns_something(self):
        placement = PlacementMap.build(["g0", "g1", "g2", "g3"])
        assert placement.group_ids() == ["g0", "g1", "g2", "g3"]

    def test_single_group_owns_the_whole_space(self):
        placement = PlacementMap.build(["solo"])
        assert placement.ranges() == [PlacementRange(0, POINT_SPACE, "solo")]
        for key in ("a", "b", "zzz"):
            assert placement.owner(key) == "solo"

    def test_no_groups_rejected(self):
        with pytest.raises(ValueError, match="at least one group"):
            PlacementMap.build([])

    def test_duplicate_groups_rejected(self):
        with pytest.raises(ValueError, match="duplicate group ids"):
            PlacementMap.build(["g0", "g0"])

    def test_tiles_the_space(self):
        placement = PlacementMap.build(["g0", "g1", "g2"], seed=11)
        placement.validate()
        ranges = placement.ranges()
        assert ranges[0].lo == 0 and ranges[-1].hi == POINT_SPACE
        for prev, cur in zip(ranges, ranges[1:]):
            assert prev.hi == cur.lo


class TestMove:
    def test_version_bumps_per_move(self):
        placement = PlacementMap.build(["g0", "g1"])
        assert placement.version == 1
        placement.move(0, POINT_SPACE // 2, "g1")
        assert placement.version == 2
        placement.move(0, POINT_SPACE // 4, "g0")
        assert placement.version == 3

    def test_move_reassigns_and_keeps_tiling(self):
        placement = PlacementMap.build(["g0", "g1"])
        lo, hi = POINT_SPACE // 4, POINT_SPACE // 2
        placement.move(lo, hi, "g1")
        placement.validate()
        assert placement.owner_of_point(lo) == "g1"
        assert placement.owner_of_point(hi - 1) == "g1"

    def test_bad_range_rejected(self):
        placement = PlacementMap.build(["g0", "g1"])
        with pytest.raises(ValueError, match="invalid move range"):
            placement.move(10, 10, "g1")
        with pytest.raises(ValueError, match="invalid move range"):
            placement.move(0, POINT_SPACE + 1, "g1")


class TestValidation:
    def test_gap_detected(self):
        with pytest.raises(ValueError, match="gap/overlap"):
            PlacementMap([PlacementRange(0, 10, "g0"),
                          PlacementRange(20, POINT_SPACE, "g1")])

    def test_not_starting_at_zero_detected(self):
        with pytest.raises(ValueError, match="does not start at 0"):
            PlacementMap([PlacementRange(5, POINT_SPACE, "g0")])

    def test_not_covering_space_detected(self):
        with pytest.raises(ValueError, match="does not cover"):
            PlacementMap([PlacementRange(0, 10, "g0")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no ranges"):
            PlacementMap([])


class TestSerialization:
    def test_json_round_trip(self):
        placement = PlacementMap.build(["g0", "g1"], seed=3)
        placement.move(0, 1000, "g1")
        clone = PlacementMap.from_json(placement.to_json())
        assert clone == placement
        assert clone.version == placement.version
        assert clone.seed == 3

    def test_schema_checked(self):
        with pytest.raises(ValueError, match="unsupported placement schema"):
            PlacementMap.from_dict({"schema": "placement/99", "ranges": []})
        assert PlacementMap.build(["g0"]).to_dict()["schema"] == \
            PLACEMENT_SCHEMA

    def test_transient_state_never_serialized(self):
        placement = PlacementMap.build(["g0", "g1"])
        placement.freeze(0, 100)
        placement.set_mirror(0, 100, "g1")
        clone = PlacementMap.from_dict(placement.to_dict())
        assert not clone.has_frozen()
        assert not clone.has_mirrors()
        copy = placement.copy()
        assert not copy.has_frozen() and not copy.has_mirrors()

    def test_transient_flags_work_and_clear(self):
        placement = PlacementMap.build(["g0", "g1"])
        placement.freeze(10, 20)
        placement.set_mirror(10, 20, "g1")
        assert placement.is_frozen_point(15)
        assert not placement.is_frozen_point(20)   # half-open
        assert placement.mirror_target(15) == "g1"
        assert placement.mirror_target(25) is None
        placement.clear_transient()
        assert not placement.has_frozen() and not placement.has_mirrors()


# --------------------------------------------------------------------------- #
# Property: exactly one owner per key at every epoch
# --------------------------------------------------------------------------- #
_GIDS = ["g0", "g1", "g2"]

_move = st.tuples(
    st.integers(min_value=0, max_value=POINT_SPACE - 2),
    st.integers(min_value=1, max_value=POINT_SPACE),
    st.sampled_from(_GIDS),
).map(lambda t: (t[0], min(POINT_SPACE, max(t[0] + 1, t[1])), t[2]))


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(moves=st.lists(_move, max_size=8),
           keys=st.lists(st.text(min_size=1, max_size=12), min_size=1,
                         max_size=8),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_every_key_has_exactly_one_owner_at_every_epoch(
            self, moves, keys, seed):
        placement = PlacementMap.build(_GIDS, seed=seed)
        versions = [placement.version]
        for lo, hi, gid in moves:
            placement.move(lo, hi, gid)
            versions.append(placement.version)
            # The epoch invariants, re-checked after every mutation:
            placement.validate()
            for key in keys:
                point = key_point(key, placement.seed)
                owners = [r.group for r in placement.ranges()
                          if r.contains(point)]
                assert len(owners) == 1
                assert placement.owner(key) == owners[0]
        assert versions == sorted(set(versions))   # strictly monotonic

    @settings(max_examples=30, deadline=None)
    @given(moves=st.lists(_move, max_size=6))
    def test_round_trip_preserves_any_reachable_placement(self, moves):
        placement = PlacementMap.build(_GIDS, seed=1)
        for lo, hi, gid in moves:
            placement.move(lo, hi, gid)
        assert PlacementMap.from_json(placement.to_json()) == placement
