"""Unit and integration tests for Gryff and Gryff-RSC."""

import pytest

from repro.gryff.carstamp import Carstamp
from repro.gryff.cluster import GryffCluster
from repro.gryff.config import GryffConfig, GryffVariant


def make_cluster(variant, **overrides):
    return GryffCluster(GryffConfig(variant=variant, **overrides))


# --------------------------------------------------------------------- #
# Carstamps
# --------------------------------------------------------------------- #
def test_carstamp_ordering():
    a = Carstamp(1, 0, "c1")
    b = Carstamp(2, 0, "c1")
    c = Carstamp(1, 1, "c2")
    assert Carstamp.ZERO < a < c < b
    assert a.bump_write("c9") == Carstamp(2, 0, "c9")
    assert a.bump_rmw("c9") == Carstamp(1, 1, "c9")
    assert a.as_tuple() == (1, 0, "c1")


def test_config_quorum_and_local_replica():
    config = GryffConfig()
    assert config.num_replicas == 5
    assert config.quorum_size == 3
    assert config.local_replica("IR") == "replica2"
    assert config.local_replica("unknown-site") == "replica0"
    assert len(config.replica_names()) == 5


# --------------------------------------------------------------------- #
# Basic read/write/rmw behaviour
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", [GryffVariant.GRYFF, GryffVariant.GRYFF_RSC])
def test_write_then_read(variant):
    cluster = make_cluster(variant)
    writer = cluster.new_client("CA")
    reader = cluster.new_client("VA")
    out = {}

    def workload():
        yield from writer.write("k", "v1")
        value = yield from reader.read("k")
        out["value"] = value

    cluster.spawn(workload())
    cluster.run()
    assert out["value"] == "v1"
    result = cluster.check_consistency()
    assert result.satisfied, result.reason


@pytest.mark.parametrize("variant", [GryffVariant.GRYFF, GryffVariant.GRYFF_RSC])
def test_read_of_unwritten_key_returns_none(variant):
    cluster = make_cluster(variant)
    reader = cluster.new_client("JP")
    out = {}

    def workload():
        out["value"] = yield from reader.read("missing")

    cluster.spawn(workload())
    cluster.run()
    assert out["value"] is None


def test_sequential_writes_monotone_carstamps():
    cluster = make_cluster(GryffVariant.GRYFF)
    client = cluster.new_client("CA")
    stamps = []

    def workload():
        for i in range(3):
            cs = yield from client.write("k", f"v{i}")
            stamps.append(cs)

    cluster.spawn(workload())
    cluster.run()
    assert stamps == sorted(stamps)
    assert stamps[0].number < stamps[1].number < stamps[2].number


def test_rmw_increments_atomically_in_sequence():
    cluster = make_cluster(GryffVariant.GRYFF_RSC)
    client = cluster.new_client("OR")
    results = []

    def workload():
        yield from client.write("counter", 0)
        for _ in range(3):
            old, new = yield from client.rmw("counter", mode="increment", amount=2)
            results.append((old, new))

    cluster.spawn(workload())
    cluster.run()
    assert results == [(0, 2), (2, 4), (4, 6)]
    result = cluster.check_consistency()
    assert result.satisfied, result.reason


def test_rmw_set_and_append_modes():
    cluster = make_cluster(GryffVariant.GRYFF)
    client = cluster.new_client("CA")
    out = []

    def workload():
        old, new = yield from client.rmw("k", mode="set", new_value="base")
        out.append((old, new))
        old, new = yield from client.rmw("k", mode="append", suffix="+more")
        out.append((old, new))

    cluster.spawn(workload())
    cluster.run()
    assert out == [(None, "base"), ("base", "base+more")]


# --------------------------------------------------------------------- #
# Read latency behaviour: write-back vs one-round reads
# --------------------------------------------------------------------- #
def run_conflicting_read(variant):
    """Read a key while a write to it is partially propagated."""
    cluster = make_cluster(variant)
    writer = cluster.new_client("CA", name="writer@CA")
    reader = cluster.new_client("VA", name="reader@VA")
    timings = {}

    def writing():
        yield from writer.write("hot", "v1")
        # Second write: the read below lands while this write's phase 2 is
        # still propagating, so the reader's quorum disagrees.
        yield from writer.write("hot", "v2")

    def reading():
        # Arrive while the second write's phase 2 is still propagating, so
        # the reader's quorum disagrees on the carstamp.
        yield cluster.env.timeout(230)
        start = cluster.env.now
        value = yield from reader.read("hot")
        timings["latency"] = cluster.env.now - start
        timings["value"] = value

    cluster.spawn(writing())
    cluster.spawn(reading())
    cluster.run()
    return cluster, timings


def test_gryff_read_takes_two_rounds_on_conflict():
    cluster, timings = run_conflicting_read(GryffVariant.GRYFF)
    reader = cluster.clients[1]
    assert reader.reads_slow == 1
    # Two wide-area round trips from VA.
    assert timings["latency"] > 150.0
    result = cluster.check_consistency()
    assert result.satisfied, result.reason


def test_gryff_rsc_read_is_always_one_round():
    cluster, timings = run_conflicting_read(GryffVariant.GRYFF_RSC)
    reader = cluster.clients[1]
    assert reader.reads_slow == 1          # the quorum disagreed ...
    assert reader.dependency is not None   # ... so a dependency is pending
    # ... but the read still finished in one wide-area round trip.
    assert timings["latency"] < 110.0
    result = cluster.check_consistency()
    assert result.satisfied, result.reason


def test_rsc_read_latency_never_exceeds_gryff():
    _, gryff = run_conflicting_read(GryffVariant.GRYFF)
    _, rsc = run_conflicting_read(GryffVariant.GRYFF_RSC)
    assert rsc["latency"] <= gryff["latency"]
    assert gryff["value"] in ("v1", "v2")
    assert rsc["value"] in ("v1", "v2")


def test_write_latency_identical_across_variants():
    latencies = {}
    for variant in (GryffVariant.GRYFF, GryffVariant.GRYFF_RSC):
        cluster = make_cluster(variant)
        client = cluster.new_client("CA")

        def workload():
            yield from client.write("k", "v")

        cluster.spawn(workload())
        cluster.run()
        latencies[variant] = cluster.recorder.samples("write")[0]
    assert latencies[GryffVariant.GRYFF] == pytest.approx(
        latencies[GryffVariant.GRYFF_RSC], rel=0.05)


# --------------------------------------------------------------------- #
# Dependency piggybacking and fences (Gryff-RSC)
# --------------------------------------------------------------------- #
def test_rsc_dependency_piggybacked_on_next_operation():
    cluster, _ = run_conflicting_read(GryffVariant.GRYFF_RSC)
    reader = cluster.clients[1]
    follow_up = {}

    def followup():
        follow_up["before"] = reader.dependency is not None
        value = yield from reader.read("hot")
        follow_up["value"] = value
        follow_up["after"] = reader.dependency

    cluster.spawn(followup())
    cluster.run()
    if follow_up["before"]:
        # The dependency was applied at the replicas before the second read,
        # so causally later reads by this client observe the newer value.
        assert follow_up["value"] == "v2"
    stats = cluster.replica_stats()
    assert sum(s["dependency_applies"] for s in stats.values()) >= (
        1 if follow_up["before"] else 0)


def test_rsc_causally_later_reads_by_same_client_see_observed_value():
    cluster = make_cluster(GryffVariant.GRYFF_RSC)
    writer = cluster.new_client("CA")
    reader = cluster.new_client("VA")
    values = []

    def writing():
        yield from writer.write("k", "a")
        yield from writer.write("k", "b")

    def reading():
        yield cluster.env.timeout(460)
        first = yield from reader.read("k")
        second = yield from reader.read("k")
        values.append((first, second))

    cluster.spawn(writing())
    cluster.spawn(reading())
    cluster.run()
    first, second = values[0]
    # Monotonic reads within a session: the second read is at least as new.
    order = {None: -1, "a": 0, "b": 1}
    assert order[second] >= order[first]
    assert cluster.check_consistency().satisfied


def test_rsc_fence_writes_back_dependency():
    cluster, _ = run_conflicting_read(GryffVariant.GRYFF_RSC)
    reader = cluster.clients[1]
    outcomes = {}

    def fencing():
        had_dependency = reader.dependency is not None
        performed = yield from reader.fence()
        outcomes["had"] = had_dependency
        outcomes["performed"] = performed
        outcomes["cleared"] = reader.dependency is None

    cluster.spawn(fencing())
    cluster.run()
    assert outcomes["performed"] == outcomes["had"]
    assert outcomes["cleared"]


def test_fence_without_dependency_is_noop():
    cluster = make_cluster(GryffVariant.GRYFF_RSC)
    client = cluster.new_client("CA")
    outcomes = {}

    def fencing():
        performed = yield from client.fence()
        outcomes["performed"] = performed
        if False:
            yield  # pragma: no cover - make this a generator

    cluster.spawn(fencing())
    cluster.run()
    assert outcomes["performed"] is False


def test_history_records_carstamps():
    cluster = make_cluster(GryffVariant.GRYFF_RSC)
    client = cluster.new_client("CA")

    def workload():
        yield from client.write("k", "v")
        yield from client.read("k")

    cluster.spawn(workload())
    cluster.run()
    ops = cluster.history.operations()
    assert len(ops) == 2
    assert ops[0].meta["carstamp"] == ops[1].meta["carstamp"]
