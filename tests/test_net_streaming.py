"""Streaming capture plumbing: wire partial reads, trace rotation/follow,
invocation records, and live end-to-end inline checking."""

import asyncio
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.core.events import Operation, reset_op_ids
from repro.core.history import History, resolve_jsonl_paths
from repro.net.check import (
    check_record_stream,
    check_trace,
    streaming_checker_for,
)
from repro.net.cluster import LiveProcess
from repro.net.load import run_load
from repro.net.recorder import (
    RecordingHistory,
    TraceWriter,
    follow_trace_records,
    read_trace,
)
from repro.net.spec import ClusterSpec
from repro.net.wire import FrameDecoder, WireError, encode_frame, read_frame


# --------------------------------------------------------------------------- #
# Wire codec under fragmentation (slow writers / partial reads)
# --------------------------------------------------------------------------- #
class TestWirePartialReads:
    def test_read_frame_fed_one_byte_at_a_time(self):
        """Audit regression: a slow writer trickling single bytes must not
        corrupt framing — ``readexactly`` resumes across any split, both
        inside the length header and inside the body."""

        async def scenario():
            records = [{"v": 1, "kind": "read1", "payload": {"i": i}}
                       for i in range(3)]
            stream = b"".join(encode_frame(record) for record in records)
            reader = asyncio.StreamReader()

            async def dribble():
                for offset in range(len(stream)):
                    reader.feed_data(stream[offset:offset + 1])
                    await asyncio.sleep(0)
                reader.feed_eof()

            feeder = asyncio.ensure_future(dribble())
            decoded = []
            while True:
                record = await read_frame(reader)
                if record is None:
                    break
                decoded.append(record)
            await feeder
            assert decoded == records

        asyncio.run(scenario())

    def test_read_frame_eof_inside_header_and_body(self):
        async def scenario():
            frame = encode_frame({"v": 1})
            for cut in (1, 3, len(frame) - 1):
                reader = asyncio.StreamReader()
                reader.feed_data(frame[:cut])
                reader.feed_eof()
                with pytest.raises(WireError):
                    await read_frame(reader)

        asyncio.run(scenario())

    def test_frame_decoder_byte_at_a_time(self):
        records = [{"v": 1, "kind": "write2", "payload": {"k": "x" * 50}},
                   {"v": 1, "kind": "ack"}]
        stream = b"".join(encode_frame(record) for record in records)
        decoder = FrameDecoder()
        decoded = []
        for offset in range(len(stream)):
            decoded.extend(decoder.feed(stream[offset:offset + 1]))
        assert decoded == records
        assert decoder.pending_bytes == 0

    def test_frame_decoder_rejects_oversize_from_header_alone(self):
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="announced"):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_frame_decoder_rejects_undecodable_body(self):
        body = b"not json"
        frame = len(body).to_bytes(4, "big") + body
        decoder = FrameDecoder()
        with pytest.raises(WireError, match="undecodable"):
            decoder.feed(frame)


# --------------------------------------------------------------------------- #
# TraceWriter: flushing, fsync, rotation
# --------------------------------------------------------------------------- #
def _sample_op(i, process="P1", t=None):
    t = float(i) if t is None else t
    return Operation.write(process, f"k{i}", f"v{i}",
                           invoked_at=t, responded_at=t + 0.5)


class TestTraceWriter:
    def test_flush_every_batches_writes(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path, flush_every=100)
        writer.record_op(_sample_op(1))
        # Header + record are buffered; a concurrent reader sees at most
        # the header until the batch flushes or the writer closes.
        writer.flush()
        with open(path) as handle:
            assert len(handle.readlines()) == 2
        writer.close()

    def test_fsync_smoke(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path, fsync=True)
        writer.record_op(_sample_op(1))
        writer.close()
        assert len(History.from_jsonl(path)) == 1

    def test_rotation_produces_standalone_files(self, tmp_path):
        reset_op_ids()
        base = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(base, meta={"protocol": "gryff-rsc"},
                             rotate_bytes=500)
        for i in range(20):
            writer.record_invocation("P1", float(i))
            writer.record_op(_sample_op(i))
        writer.close()
        files = resolve_jsonl_paths(base)
        assert len(files) > 1
        assert not os.path.exists(base)          # only the rotated set
        for path in files:
            with open(path) as handle:
                first = json.loads(handle.readline())
            assert first["type"] == "meta"       # every file standalone
            assert first["protocol"] == "gryff-rsc"
        # Both readers accept the base path as a name for the set.
        history = History.from_jsonl(base)
        assert len(history) == 20
        meta, same = read_trace(base)
        assert meta["protocol"] == "gryff-rsc" and len(same) == 20

    def test_rotated_set_ignores_unrelated_digit_siblings(self, tmp_path):
        """Regression: only the writer's exact `-NNNN` names belong to a
        rotated set; a stale digit-leading sibling must not be swept in."""
        reset_op_ids()
        base = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(base, rotate_bytes=300)
        for i in range(6):
            writer.record_op(_sample_op(i))
        writer.close()
        stray = tmp_path / "trace-2024-backup.jsonl"
        stray.write_text('{"type":"op","op_id":999,"process":"Z",'
                         '"op_type":"write","key":"z","value":1,'
                         '"invoked_at":0.0,"responded_at":1.0}\n')
        (tmp_path / "trace-2.jsonl").write_text("")   # not 4-digit padded
        files = resolve_jsonl_paths(base)
        assert str(stray) not in files
        assert all("-2." not in name for name in files)
        assert len(History.from_jsonl(base)) == 6

    def test_rotate_requires_path(self):
        import io

        with pytest.raises(ValueError):
            TraceWriter(io.StringIO(), rotate_bytes=100)


# --------------------------------------------------------------------------- #
# Follow mode (tail -f over single files and rotated sets)
# --------------------------------------------------------------------------- #
class TestFollow:
    def test_follow_reads_existing_and_stops_at_idle_timeout(self, tmp_path):
        reset_op_ids()
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path, meta={"protocol": "gryff-rsc"})
        for i in range(5):
            writer.record_op(_sample_op(i))
        writer.close()
        records = list(follow_trace_records(path, idle_timeout=0))
        assert [r["type"] for r in records] == ["meta"] + ["op"] * 5

    def test_follow_crosses_rotation_boundaries(self, tmp_path):
        reset_op_ids()
        base = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(base, rotate_bytes=400)
        for i in range(12):
            writer.record_op(_sample_op(i))
        writer.close()
        assert len(resolve_jsonl_paths(base)) > 1
        records = list(follow_trace_records(base, idle_timeout=0))
        assert sum(1 for r in records if r["type"] == "op") == 12

    def test_follow_sees_data_written_between_polls(self, tmp_path):
        reset_op_ids()
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        writer.record_op(_sample_op(0))
        writer.flush()

        appended = []

        def fake_sleep(_seconds):
            if not appended:
                writer.record_op(_sample_op(1))
                writer.flush()
                appended.append(True)

        records = list(follow_trace_records(path, idle_timeout=0.2,
                                            poll_interval=0.2,
                                            _sleep=fake_sleep))
        assert sum(1 for r in records if r["type"] == "op") == 2

    def test_follow_tolerates_truncated_tail(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write('{"type":"op","op_id":1,"process":"P1",'
                         '"op_type":"write","key":"x","value":1,'
                         '"invoked_at":0.0,"responded_at":1.0}\n')
            handle.write('{"type":"op","op_id":2,"proc')   # crash mid-record
        records = list(follow_trace_records(path, idle_timeout=0))
        assert len(records) == 1

    def test_follow_raises_on_mid_stream_corruption(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write("not json at all\n")
            handle.write('{"type":"op"}\n')
        with pytest.raises(ValueError, match="corrupt"):
            list(follow_trace_records(path, idle_timeout=0))


# --------------------------------------------------------------------------- #
# Invocation records: capture and replay
# --------------------------------------------------------------------------- #
class TestInvocationRecords:
    def test_recording_history_emits_inv_and_abandon_records(self, tmp_path):
        reset_op_ids()
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path, meta={"protocol": "gryff-rsc"})
        history = RecordingHistory(writer)
        history.note_invocation("P1", 0.0)
        history.add(_sample_op(1, t=0.0))
        history.note_invocation("P2", 2.0)
        history.note_abandoned("P2", 3.0)
        writer.close()
        kinds = [json.loads(line)["type"] for line in open(path)]
        assert kinds == ["meta", "inv", "op", "inv", "abandon"]
        # The offline loader skips the streaming-only records.
        assert len(History.from_jsonl(path)) == 1

    def test_record_stream_checking_matches_batch(self, tmp_path):
        """A recorded trace replayed through the streaming checker agrees
        with the batch checker — including epoch cuts from inv records."""
        reset_op_ids()
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path, meta={"protocol": "gryff-rsc"})
        history = RecordingHistory(writer)
        now = 0.0
        for i in range(10):
            history.note_invocation("P1", now)
            history.add(Operation.write(
                "P1", "x", f"v{i}", invoked_at=now, responded_at=now + 1,
                carstamp=(i + 1, 0, "P1")))
            now += 2.0
        writer.close()
        meta, loaded = read_trace(path)
        batch = check_trace(loaded, meta["protocol"])
        checker = streaming_checker_for("gryff-rsc", min_epoch_ops=3)
        report = check_record_stream(
            follow_trace_records(path, idle_timeout=0), checker)
        assert report.satisfied == bool(batch) is True
        assert report.epochs > 1                  # inv records enabled cuts
        assert report.ops_checked == 10

    def test_trace_without_inv_records_degrades_to_one_epoch(self, tmp_path):
        reset_op_ids()
        path = str(tmp_path / "t.jsonl")
        history = History()
        for i in range(6):
            history.add(Operation.write("P1", "x", f"v{i}", invoked_at=2.0 * i,
                                        responded_at=2.0 * i + 1,
                                        carstamp=(i + 1, 0, "P1")))
        history.to_jsonl(path)
        checker = streaming_checker_for("gryff-rsc", min_epoch_ops=1)
        report = check_record_stream(
            follow_trace_records(path, idle_timeout=0), checker)
        assert report.satisfied and report.epochs == 1


# --------------------------------------------------------------------------- #
# Live end-to-end: inline checking and --follow over a real TCP run
# --------------------------------------------------------------------------- #
class TestLiveInlineChecking:
    def _run_live(self, tmp_path, protocol="gryff-rsc", **kwargs):
        trace_path = str(tmp_path / "live.jsonl")

        async def scenario():
            if protocol.startswith("gryff"):
                spec = ClusterSpec.gryff(num_replicas=3, base_port=0,
                                         variant=protocol)
            else:
                spec = ClusterSpec.spanner(num_shards=2, base_port=0,
                                           params={"truetime_epsilon_ms": 1.0})
            server = LiveProcess(spec)
            await server.start()
            try:
                summary = await run_load(
                    spec, num_clients=2, duration_ms=None, ops_per_client=6,
                    write_ratio=0.5, conflict_rate=0.4, seed=7,
                    trace_path=trace_path, check_inline=True,
                    check_min_epoch_ops=1, think_time_ms=3.0, **kwargs)
            finally:
                await server.stop()
            return summary

        return asyncio.run(scenario()), trace_path

    def test_gryff_inline_check_satisfied(self, tmp_path):
        summary, trace_path = self._run_live(tmp_path)
        check = summary["check"]
        assert check["satisfied"], check
        assert check["model"] == "rsc"
        assert check["ops_checked"] == summary["ops"] == 12
        # Think time opens quiescent windows, so real epoch cuts form and
        # the peak epoch stays below the whole run (bounded memory).
        assert check["epochs"] >= 2, check
        assert check["max_segment_ops"] < check["ops_checked"], check
        kinds = {json.loads(line)["type"] for line in open(trace_path)}
        assert {"meta", "inv", "op"} <= kinds
        # The same trace replays to the same verdict offline (batch)...
        meta, history = read_trace(trace_path)
        assert bool(check_trace(history, meta["protocol"]))
        # ...and through the follow CLI (streaming).
        code = cli_main(["live-check", trace_path, "--follow",
                         "--idle-timeout", "0", "--min-epoch-ops", "1"])
        assert code == 0

    def test_spanner_inline_check_satisfied(self, tmp_path):
        summary, trace_path = self._run_live(tmp_path, protocol="spanner-rss")
        check = summary["check"]
        assert check["satisfied"], check
        assert check["model"] == "rss"
        assert check["ops_checked"] == summary["ops"]

    def test_follow_cli_detects_violation(self, tmp_path, capsys):
        reset_op_ids()
        path = str(tmp_path / "bad.jsonl")
        writer = TraceWriter(path, meta={"protocol": "gryff-rsc"})
        history = RecordingHistory(writer)
        history.note_invocation("P1", 0.0)
        history.add(Operation.write("P1", "x", "v1", invoked_at=0.0,
                                    responded_at=1.0, carstamp=(1, 0, "P1")))
        history.note_invocation("P1", 2.0)
        history.add(Operation.write("P1", "x", "v2", invoked_at=2.0,
                                    responded_at=3.0, carstamp=(2, 0, "P1")))
        history.note_invocation("P2", 10.0)
        history.add(Operation.read("P2", "x", "v1", invoked_at=10.0,
                                   responded_at=11.0, carstamp=(1, 0, "P1")))
        writer.close()
        code = cli_main(["live-check", path, "--follow",
                         "--idle-timeout", "0", "--min-epoch-ops", "1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in out
        assert "epoch" in out
