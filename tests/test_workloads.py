"""Unit tests for the workload generators and client drivers."""

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Environment
from repro.workloads.clients import (ClosedLoopDriver, OpenLoopDriver,
                                     PartlyOpenDriver)
from repro.workloads.retwis import RETWIS_MIX, RetwisWorkload
from repro.workloads.ycsb import YcsbWorkload
from repro.workloads.zipf import ZipfGenerator


# --------------------------------------------------------------------- #
# Zipf
# --------------------------------------------------------------------- #
def test_zipf_range_and_determinism():
    gen1 = ZipfGenerator(1000, 0.9, rng=random.Random(7))
    gen2 = ZipfGenerator(1000, 0.9, rng=random.Random(7))
    samples1 = [gen1.sample() for _ in range(500)]
    samples2 = [gen2.sample() for _ in range(500)]
    assert samples1 == samples2
    assert all(0 <= s < 1000 for s in samples1)


def test_zipf_skew_concentrates_mass():
    skewed = ZipfGenerator(10_000, 0.99, rng=random.Random(1))
    uniform = ZipfGenerator(10_000, 0.0, rng=random.Random(1))
    skewed_hot = sum(1 for _ in range(5000) if skewed.sample() < 10)
    uniform_hot = sum(1 for _ in range(5000) if uniform.sample() < 10)
    assert skewed_hot > 20 * max(uniform_hot, 1)


def test_zipf_higher_skew_is_hotter():
    low = ZipfGenerator(100_000, 0.5, rng=random.Random(3))
    high = ZipfGenerator(100_000, 0.9, rng=random.Random(3))
    low_hot = sum(1 for _ in range(5000) if low.sample() < 100)
    high_hot = sum(1 for _ in range(5000) if high.sample() < 100)
    assert high_hot > low_hot


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfGenerator(0, 0.5)
    with pytest.raises(ValueError):
        ZipfGenerator(10, -1.0)


def test_zipf_theta_one_supported():
    gen = ZipfGenerator(100, 1.0, rng=random.Random(5))
    samples = [gen.sample() for _ in range(200)]
    assert all(0 <= s < 100 for s in samples)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10_000),
       st.floats(min_value=0.0, max_value=1.2),
       st.integers(min_value=0, max_value=1000))
def test_zipf_samples_always_in_range(n, theta, seed):
    gen = ZipfGenerator(n, theta, rng=random.Random(seed))
    for _ in range(50):
        assert 0 <= gen.sample() < n


def _reference_zipf_stream(n, theta, seed, count):
    """The seed implementation's sampling loop, kept as a bit-exactness
    oracle for the hoisted-constant fast path."""
    import math

    rng = random.Random(seed)
    if theta == 0.0:
        return [rng.randrange(n) for _ in range(count)]

    def _pow(x):
        return math.exp(-theta * math.log(x))

    def _h(x):
        if theta == 1.0:
            return math.log(x)
        return (x ** (1.0 - theta)) / (1.0 - theta)

    def _h_inv(x):
        if theta == 1.0:
            return math.exp(x)
        return (x * (1.0 - theta)) ** (1.0 / (1.0 - theta))

    h_x1 = _h(1.5) - 1.0
    h_n = _h(n + 0.5)
    s = 2.0 - _h_inv(_h(2.5) - _pow(2.0))
    out = []
    while len(out) < count:
        u = h_n + rng.random() * (h_x1 - h_n)
        x = _h_inv(u)
        k = math.floor(x + 0.5)
        if k - x <= s:
            out.append(int(k) - 1)
        elif u >= _h(k + 0.5) - _pow(k):
            out.append(int(k) - 1)
    return out


@pytest.mark.parametrize("theta", [0.0, 0.5, 0.9, 1.0, 1.3])
def test_zipf_fast_path_bit_identical_to_reference(theta):
    gen = ZipfGenerator(5_000, theta, rng=random.Random(17))
    stream = [gen.sample() for _ in range(400)]
    assert stream == _reference_zipf_stream(5_000, theta, 17, 400)


@pytest.mark.parametrize("theta", [0.0, 0.9, 1.0])
def test_zipf_sample_many_consumes_rng_like_single_draws(theta):
    single = ZipfGenerator(1_000, theta, rng=random.Random(23))
    batched = ZipfGenerator(1_000, theta, rng=random.Random(23))
    expected = [single.sample() for _ in range(50)]
    got = batched.sample_many(20)
    got += [batched.sample() for _ in range(10)]
    got += batched.sample_many(20)
    assert got == expected
    assert batched.sample_many(0) == []


def test_zipf_key_prefix():
    gen = ZipfGenerator(10, 0.0, rng=random.Random(0))
    assert gen.sample_key("user").startswith("user")


# --------------------------------------------------------------------- #
# Retwis
# --------------------------------------------------------------------- #
def test_retwis_mix_proportions():
    workload = RetwisWorkload(num_keys=10_000, zipf_skew=0.5, seed=11)
    for _ in range(4000):
        workload.next_transaction()
    fractions = workload.mix_fractions()
    expected = {name: probability for name, probability, *_ in RETWIS_MIX}
    for name, probability in expected.items():
        assert fractions[name] == pytest.approx(probability, abs=0.04)


def test_retwis_transaction_shapes():
    workload = RetwisWorkload(num_keys=1000, zipf_skew=0.7, seed=3)
    shapes = {name: (reads, writes, ro) for name, _, reads, writes, ro in RETWIS_MIX}
    for _ in range(300):
        txn = workload.next_transaction()
        reads, writes, read_only = shapes[txn.name]
        assert txn.read_only == read_only
        if read_only:
            assert 1 <= len(txn.read_keys) <= 10
            assert not txn.write_keys
        else:
            assert len(txn.read_keys) == reads
            assert len(txn.write_keys) == writes
            assert len(set(txn.write_keys)) == len(txn.write_keys)


def test_retwis_unique_values():
    workload = RetwisWorkload(num_keys=100, zipf_skew=0.5)
    values = {workload.unique_value() for _ in range(100)}
    assert len(values) == 100


# --------------------------------------------------------------------- #
# YCSB
# --------------------------------------------------------------------- #
def test_ycsb_write_ratio_and_conflicts():
    workload = YcsbWorkload("c1", write_ratio=0.3, conflict_rate=0.25, seed=9)
    hot = 0
    for _ in range(2000):
        op = workload.next_operation()
        if op.key == workload.hot_key:
            hot += 1
        if op.kind == "write":
            assert op.value is not None
        else:
            assert op.value is None
    assert workload.observed_write_ratio() == pytest.approx(0.3, abs=0.05)
    assert hot / 2000 == pytest.approx(0.25, abs=0.05)


def test_ycsb_private_keys_are_per_client():
    a = YcsbWorkload("alice", write_ratio=0.5, conflict_rate=0.0, seed=1)
    b = YcsbWorkload("bob", write_ratio=0.5, conflict_rate=0.0, seed=1)
    keys_a = {a.next_operation().key for _ in range(100)}
    keys_b = {b.next_operation().key for _ in range(100)}
    assert not keys_a & keys_b


def test_ycsb_validation():
    with pytest.raises(ValueError):
        YcsbWorkload("c", write_ratio=1.5, conflict_rate=0.0)
    with pytest.raises(ValueError):
        YcsbWorkload("c", write_ratio=0.5, conflict_rate=-0.1)


def test_ycsb_unique_written_values():
    workload = YcsbWorkload("c1", write_ratio=1.0, conflict_rate=0.0, seed=2)
    values = [workload.next_operation().value for _ in range(200)]
    assert len(set(values)) == 200


# --------------------------------------------------------------------- #
# Client drivers (with a trivial in-memory executor)
# --------------------------------------------------------------------- #
class FakeWorkload:
    def __init__(self):
        self.issued = 0

    def next_operation(self):
        self.issued += 1
        return {"op": self.issued}


class FakeClient:
    def __init__(self, name):
        self.name = name
        self.executed = []
        self.sessions_reset = 0


def make_executor(env, service_time=5.0):
    def executor(client, spec):
        yield env.timeout(service_time)
        client.executed.append(spec)
    return executor


def _pairs(clients):
    return [(client, FakeWorkload()) for client in clients]


def test_closed_loop_driver_operation_count():
    env = Environment()
    clients = [FakeClient("a"), FakeClient("b")]
    driver = ClosedLoopDriver(env, _pairs(clients), make_executor(env),
                              operations_per_client=10)
    driver.start()
    env.run()
    assert all(len(c.executed) == 10 for c in clients)
    assert driver.completed == 20


def test_closed_loop_driver_duration_bound():
    env = Environment()
    clients = [FakeClient("a")]
    driver = ClosedLoopDriver(env, _pairs(clients), make_executor(env, 10.0),
                              duration_ms=95.0)
    driver.start()
    env.run()
    assert len(clients[0].executed) == 10


def test_closed_loop_driver_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ClosedLoopDriver(env, _pairs([FakeClient("a")]), make_executor(env))
    with pytest.raises(TypeError, match=r"\(session, workload\) pair"):
        ClosedLoopDriver(env, [FakeClient("a")], make_executor(env),
                         duration_ms=10)
    with pytest.raises(TypeError, match="executor"):
        ClosedLoopDriver(env, _pairs([FakeClient("a")]), duration_ms=10)


def test_partly_open_driver_requires_rate_and_duration():
    env = Environment()
    with pytest.raises(TypeError, match="arrival_rate_per_client"):
        PartlyOpenDriver(env, _pairs([FakeClient("a")]), make_executor(env),
                         duration_ms=100.0)
    with pytest.raises(TypeError, match="duration_ms"):
        PartlyOpenDriver(env, _pairs([FakeClient("a")]), make_executor(env),
                         arrival_rate_per_client=0.1)


def test_drivers_accept_legacy_lists_with_deprecation():
    env = Environment()
    clients = [FakeClient("a"), FakeClient("b")]
    workloads = [FakeWorkload(), FakeWorkload()]
    with pytest.warns(DeprecationWarning, match="pairs"):
        driver = ClosedLoopDriver(env, clients, workloads, make_executor(env),
                                  operations_per_client=3)
    driver.start()
    env.run()
    assert all(len(c.executed) == 3 for c in clients)


def test_legacy_lists_length_mismatch_is_a_clear_error():
    env = Environment()
    with pytest.warns(DeprecationWarning), \
            pytest.raises(ValueError, match="one workload generator per"):
        ClosedLoopDriver(env, [FakeClient("a")], [], make_executor(env),
                         duration_ms=10)
    with pytest.warns(DeprecationWarning), \
            pytest.raises(ValueError, match="2 sessions, 1 workloads"):
        PartlyOpenDriver(env, [FakeClient("a"), FakeClient("b")],
                         [FakeWorkload()], make_executor(env),
                         arrival_rate_per_client=0.1, duration_ms=10)


def test_partly_open_driver_sessions_and_resets():
    env = Environment()
    clients = [FakeClient("a"), FakeClient("b")]

    def reset(client):
        client.sessions_reset += 1

    driver = PartlyOpenDriver(
        env, _pairs(clients), make_executor(env, 2.0),
        arrival_rate_per_client=0.01,   # one session every ~100 ms per client
        duration_ms=5_000.0,
        continue_probability=0.9,
        reset_session=reset,
        seed=4,
    )
    driver.start()
    env.run()
    assert driver.stats.sessions > 10
    assert driver.stats.transactions > driver.stats.sessions
    assert sum(c.sessions_reset for c in clients) == driver.stats.sessions
    # Average session length should be roughly 1 / (1 - p) = 10 transactions.
    average = driver.stats.transactions / driver.stats.sessions
    assert 5.0 < average < 20.0


def test_partly_open_driver_respects_duration():
    env = Environment()
    clients = [FakeClient("a")]
    driver = PartlyOpenDriver(
        env, _pairs(clients), make_executor(env, 1.0),
        arrival_rate_per_client=0.05, duration_ms=500.0, seed=2,
    )
    driver.start()
    env.run()
    assert env.now <= 520.0


# --------------------------------------------------------------------- #
# Open-loop driver (coordinated-omission-correct arrivals)
# --------------------------------------------------------------------- #
def test_open_loop_driver_fixed_schedule_hits_the_rate():
    env = Environment()
    clients = [FakeClient("a"), FakeClient("b"), FakeClient("c")]
    driver = OpenLoopDriver(env, _pairs(clients), make_executor(env, 0.5),
                            rate_per_s=1_000.0, duration_ms=100.0,
                            arrival="fixed")
    driver.start()
    env.run()
    stats = driver.stats()
    assert stats["offered"] == 100          # 1/ms for 100 ms
    assert stats["completed"] == 100
    assert stats["abandoned"] == 0
    assert 900.0 < stats["achieved_rate_per_s"] <= 1_100.0
    assert sum(len(c.executed) for c in clients) == 100


def test_open_loop_driver_charges_queueing_to_the_response_time():
    """The coordinated-omission correction: with one slow session, each
    arrival keeps its *intended* timestamp while queued, so the recorded
    response times grow linearly even though every attempt's service time
    is a flat 10 ms.  A closed-loop client would have reported ~10 ms."""
    from repro.sim.stats import LatencyRecorder

    env = Environment()
    recorder = LatencyRecorder()
    driver = OpenLoopDriver(env, _pairs([FakeClient("a")]),
                            make_executor(env, 10.0),
                            rate_per_s=500.0, duration_ms=40.0,
                            arrival="fixed", recorder=recorder,
                            drain_timeout_ms=10_000.0)
    driver.start()
    env.run()
    stats = driver.stats()
    assert stats["offered"] == 20           # every 2 ms for 40 ms
    assert stats["completed"] == 20         # drained after the schedule
    assert stats["backlog_peak"] > 10       # the pool saturated immediately
    samples = recorder.sorted_samples("txn")
    assert len(samples) == 20
    # Arrivals every 2 ms into a 10 ms server: the last response waited
    # roughly 19 service times minus its arrival offset.
    assert samples[-1] > 100.0
    assert samples[0] == pytest.approx(10.0, abs=2.0)


def test_open_loop_driver_abandons_backlog_at_the_drain_timeout():
    env = Environment()
    driver = OpenLoopDriver(env, _pairs([FakeClient("a")]),
                            make_executor(env, 50.0),
                            rate_per_s=1_000.0, duration_ms=20.0,
                            arrival="fixed", drain_timeout_ms=100.0)
    driver.start()
    env.run()
    stats = driver.stats()
    assert stats["offered"] == 20
    assert stats["completed"] < 20
    assert stats["abandoned"] == stats["offered"] - stats["completed"]
    assert stats["abandoned"] > 0


def test_open_loop_driver_poisson_is_seeded_and_reproducible():
    def run(seed):
        env = Environment()
        driver = OpenLoopDriver(env, _pairs([FakeClient("a"),
                                             FakeClient("b")]),
                                make_executor(env, 1.0),
                                rate_per_s=2_000.0, duration_ms=50.0,
                                arrival="poisson", seed=seed)
        driver.start()
        env.run()
        return driver.stats()

    first, second = run(7), run(7)
    assert first == second
    assert run(8) != first                  # a different schedule
    assert 40 < first["offered"] < 200      # ~100 expected arrivals


def test_open_loop_driver_validation():
    env = Environment()
    pairs = _pairs([FakeClient("a")])
    with pytest.raises(TypeError, match="rate_per_s and duration_ms"):
        OpenLoopDriver(env, pairs, make_executor(env))
    with pytest.raises(ValueError, match="positive"):
        OpenLoopDriver(env, pairs, make_executor(env),
                       rate_per_s=0.0, duration_ms=10.0)
    with pytest.raises(ValueError, match="arrival schedule"):
        OpenLoopDriver(env, pairs, make_executor(env),
                       rate_per_s=10.0, duration_ms=10.0, arrival="uniform")
    with pytest.raises(ValueError, match="at least one"):
        OpenLoopDriver(env, [], make_executor(env),
                       rate_per_s=10.0, duration_ms=10.0)
