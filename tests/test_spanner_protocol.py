"""Integration tests for the Spanner and Spanner-RSS protocols."""

import pytest

from repro.core.checkers import (
    check_rss,
    check_strict_serializability,
)
from repro.core.specification import TransactionalKVSpec
from repro.spanner.cluster import SpannerCluster
from repro.spanner.config import SpannerConfig, Variant


def key_on_shard(config: SpannerConfig, shard_index: int, salt: str = "k") -> str:
    """Find a key mapped to the given shard (deterministic)."""
    target = config.shard_name(shard_index)
    for i in range(10_000):
        key = f"{salt}{i}"
        if config.shard_for_key(key) == target:
            return key
    raise AssertionError("no key found for shard")


def make_cluster(variant: Variant, **overrides) -> SpannerCluster:
    config = SpannerConfig(variant=variant, **overrides)
    return SpannerCluster(config)


def writes_const(values):
    """A compute_writes callable that ignores the reads."""
    return lambda _reads: dict(values)


# --------------------------------------------------------------------- #
# Basic read-write / read-only behaviour
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", [Variant.SPANNER, Variant.SPANNER_RSS])
def test_rw_then_ro_sees_value(variant):
    cluster = make_cluster(variant)
    config = cluster.config
    key_a = key_on_shard(config, 0, "a")
    key_b = key_on_shard(config, 1, "b")
    writer = cluster.new_client("CA")
    reader = cluster.new_client("VA")
    results = {}

    def workload():
        yield from writer.read_write_transaction([], writes_const({key_a: "va1", key_b: "vb1"}))
        values = yield from reader.read_only_transaction([key_a, key_b])
        results.update(values)

    cluster.spawn(workload())
    cluster.run()
    assert results == {key_a: "va1", key_b: "vb1"}
    assert cluster.total_committed() == 1
    assert cluster.check_consistency().satisfied


@pytest.mark.parametrize("variant", [Variant.SPANNER, Variant.SPANNER_RSS])
def test_rw_reads_observe_previous_writes(variant):
    cluster = make_cluster(variant)
    key = key_on_shard(cluster.config, 0)
    client = cluster.new_client("CA")
    observed = []

    def workload():
        yield from client.read_write_transaction([], writes_const({key: "v1"}))
        reads, writes, _ = yield from client.read_write_transaction(
            [key], lambda vals: {key: f"{vals[key]}+v2"})
        observed.append((reads[key], writes[key]))

    cluster.spawn(workload())
    cluster.run()
    assert observed == [("v1", "v1+v2")]
    assert cluster.check_consistency().satisfied


def test_ro_transaction_of_unwritten_keys_returns_none():
    cluster = make_cluster(Variant.SPANNER_RSS)
    key = key_on_shard(cluster.config, 2, "fresh")
    reader = cluster.new_client("IR")
    out = {}

    def workload():
        values = yield from reader.read_only_transaction([key])
        out.update(values)

    cluster.spawn(workload())
    cluster.run()
    assert out == {key: None}


def test_concurrent_conflicting_rw_transactions_serialize():
    cluster = make_cluster(Variant.SPANNER_RSS)
    key = key_on_shard(cluster.config, 0, "ctr")
    clients = [cluster.new_client(site) for site in ("CA", "VA", "IR")]
    final = {}

    def setup_and_read():
        yield from clients[0].read_write_transaction([], writes_const({key: 0}))
        for _ in range(2):
            yield cluster.env.timeout(500)
        values = yield from clients[0].read_only_transaction([key])
        final.update(values)

    def incrementer(client, delay):
        def bump(vals):
            return {key: (vals[key] or 0) + 1}
        yield cluster.env.timeout(delay)
        yield from client.read_write_transaction([key], bump)

    cluster.spawn(setup_and_read())
    cluster.spawn(incrementer(clients[1], 200))
    cluster.spawn(incrementer(clients[2], 210))
    cluster.run()
    assert final[key] == 2
    result = cluster.check_consistency()
    assert result.satisfied, result.reason


# --------------------------------------------------------------------- #
# The headline behaviour: RO blocking vs Spanner-RSS's fast path
# --------------------------------------------------------------------- #
def run_blocking_scenario(variant: Variant):
    """One RW transaction in its 2PC window while an RO reads the same key."""
    cluster = make_cluster(variant)
    config = cluster.config
    key_a = key_on_shard(config, 0, "hotA")   # shard leader in CA
    key_b = key_on_shard(config, 1, "hotB")   # shard leader in VA
    writer = cluster.new_client("CA", name="writer@CA")
    reader = cluster.new_client("VA", name="reader@VA")
    ro_latency = {}
    ro_values = {}

    def setup():
        yield from writer.read_write_transaction(
            [], writes_const({key_a: "old-a", key_b: "old-b"}))

    def writing(delay):
        yield cluster.env.timeout(delay)
        yield from writer.read_write_transaction(
            [], writes_const({key_a: "new-a", key_b: "new-b"}))

    def reading(delay):
        yield cluster.env.timeout(delay)
        start = cluster.env.now
        values = yield from reader.read_only_transaction([key_a])
        ro_latency["value"] = cluster.env.now - start
        ro_values.update(values)

    cluster.spawn(setup())
    # Let the setup transaction finish (well under 1000 ms), then launch the
    # conflicting RW transaction and read during its prepare window.
    cluster.spawn(writing(1000))
    cluster.spawn(reading(1100))
    cluster.run()
    return cluster, ro_latency["value"], ro_values


def test_spanner_ro_blocks_behind_prepared_transaction():
    cluster, latency, values = run_blocking_scenario(Variant.SPANNER)
    stats = cluster.shard_stats()
    assert sum(s["ro_blocked"] for s in stats.values()) >= 1
    # The RO had to wait for two-phase commit to finish: well above one RTT.
    assert latency > 90.0
    assert cluster.check_consistency().satisfied


def test_spanner_rss_ro_avoids_blocking():
    cluster, latency, values = run_blocking_scenario(Variant.SPANNER_RSS)
    stats = cluster.shard_stats()
    assert sum(s["ro_skipped_prepared"] for s in stats.values()) >= 1
    # One wide-area round trip (VA -> CA shard leader) plus overheads.
    assert latency < 90.0
    assert list(values.values()) == ["old-a"]
    result = cluster.check_consistency()
    assert result.satisfied, result.reason


def test_rss_is_never_slower_for_ro_transactions():
    _, spanner_latency, _ = run_blocking_scenario(Variant.SPANNER)
    _, rss_latency, _ = run_blocking_scenario(Variant.SPANNER_RSS)
    assert rss_latency <= spanner_latency


def test_rw_latency_identical_across_variants():
    latencies = {}
    for variant in (Variant.SPANNER, Variant.SPANNER_RSS):
        cluster = make_cluster(variant)
        key_a = key_on_shard(cluster.config, 0, "hotA")
        key_b = key_on_shard(cluster.config, 1, "hotB")
        client = cluster.new_client("CA")

        def workload():
            yield from client.read_write_transaction(
                [], writes_const({key_a: "x", key_b: "y"}))

        cluster.spawn(workload())
        cluster.run()
        latencies[variant] = cluster.recorder.samples("rw")[0]
    assert latencies[Variant.SPANNER] == pytest.approx(
        latencies[Variant.SPANNER_RSS], rel=0.05)


# --------------------------------------------------------------------- #
# Causality: t_min forces observation of causally seen writes
# --------------------------------------------------------------------- #
def test_t_min_propagation_prevents_stale_read_across_sessions():
    cluster = make_cluster(Variant.SPANNER_RSS)
    config = cluster.config
    key_a = key_on_shard(config, 0, "hotA")
    writer = cluster.new_client("CA")
    observer = cluster.new_client("VA")
    follower = cluster.new_client("IR")
    seen = {}

    def setup():
        yield from writer.read_write_transaction([], writes_const({key_a: "old"}))

    def write_new(delay):
        yield cluster.env.timeout(delay)
        yield from writer.read_write_transaction([], writes_const({key_a: "new"}))

    def observe_then_call(delay):
        yield cluster.env.timeout(delay)
        values = yield from observer.read_only_transaction([key_a])
        seen["observer"] = values[key_a]
        # Out-of-band message passing: the observer calls the follower and
        # passes its causal context (t_min), as in §4.2.
        follower.import_context(observer.export_context())
        follower_values = yield from follower.read_only_transaction([key_a])
        seen["follower"] = follower_values[key_a]

    cluster.spawn(setup())
    cluster.spawn(write_new(1000))
    # Observe after the write commits so the observer definitely sees "new".
    cluster.spawn(observe_then_call(1400))
    cluster.run()
    assert seen["observer"] == "new"
    assert seen["follower"] == "new"
    assert cluster.check_consistency().satisfied


def test_fence_blocks_until_bound_passes():
    cluster = make_cluster(Variant.SPANNER_RSS)
    client = cluster.new_client("CA")
    timings = {}

    def workload():
        key = key_on_shard(cluster.config, 0)
        yield from client.read_write_transaction([], writes_const({key: "v"}))
        start = cluster.env.now
        yield from client.fence()
        timings["fence"] = cluster.env.now - start
        timings["t_min"] = client.t_min

    cluster.spawn(workload())
    cluster.run()
    # The fence waits until t_min + L is definitely in the past.
    assert timings["fence"] >= 0.0
    assert cluster.env.now > timings["t_min"] + cluster.config.fence_bound_ms


def test_history_records_operations_with_metadata():
    cluster = make_cluster(Variant.SPANNER_RSS)
    key = key_on_shard(cluster.config, 0)
    client = cluster.new_client("CA")

    def workload():
        yield from client.read_write_transaction([], writes_const({key: "v1"}))
        yield from client.read_only_transaction([key])

    cluster.spawn(workload())
    cluster.run()
    ops = cluster.history.operations()
    assert len(ops) == 2
    assert "commit_ts" in ops[0].meta
    assert "snapshot_ts" in ops[1].meta
    assert ops[1].read_set == {key: "v1"}
