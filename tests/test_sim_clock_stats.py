"""Unit tests for simulated clocks and latency statistics."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import LocalClock, TrueTime, TrueTimeInterval
from repro.sim.engine import Environment
from repro.sim.stats import LatencyRecorder, Percentiles, cdf_points, percentile, throughput


# --------------------------------------------------------------------- #
# Clocks
# --------------------------------------------------------------------- #
def test_local_clock_offset():
    env = Environment()
    clock = LocalClock(env, offset=5.0)
    assert clock.now() == 5.0

    def advance():
        yield env.timeout(10)

    env.process(advance())
    env.run()
    assert clock.now() == 15.0


def test_truetime_interval_contains_true_time():
    env = Environment()
    tt = TrueTime(env, epsilon=10.0)
    interval = tt.now()
    assert interval.earliest == -10.0
    assert interval.latest == 10.0
    assert interval.contains(0.0)
    assert interval.width == 20.0


def test_truetime_interval_validation():
    with pytest.raises(ValueError):
        TrueTimeInterval(earliest=5.0, latest=1.0)
    env = Environment()
    with pytest.raises(ValueError):
        TrueTime(env, epsilon=-1.0)
    with pytest.raises(ValueError):
        TrueTime(env, epsilon=1.0, min_epsilon=2.0)


def test_truetime_after_before():
    env = Environment()
    tt = TrueTime(env, epsilon=5.0)

    def advance():
        yield env.timeout(100)

    env.process(advance())
    env.run()
    assert tt.after(90.0)
    assert not tt.after(96.0)
    assert tt.before(106.0)
    assert not tt.before(104.0)


def test_truetime_commit_wait():
    env = Environment()
    tt = TrueTime(env, epsilon=7.0)
    done = []

    def committer():
        commit_ts = env.now + 3.0
        yield from tt.wait_until_after(commit_ts)
        done.append(env.now)

    env.process(committer())
    env.run()
    # Must wait until commit_ts (3.0) is strictly before now - epsilon.
    assert done and done[0] > 10.0


def test_truetime_jittered_epsilon_still_contains_truth():
    env = Environment()
    tt = TrueTime(env, epsilon=10.0, min_epsilon=2.0, jitter_rng=random.Random(1))
    for _ in range(50):
        interval = tt.now()
        assert interval.contains(env.now)
        assert 4.0 <= interval.width <= 20.0


# --------------------------------------------------------------------- #
# Percentiles / recorder
# --------------------------------------------------------------------- #
def test_percentile_simple():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 50) == 3.0
    assert percentile(data, 100) == 5.0
    assert percentile(data, 25) == 2.0


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_percentiles_bundle():
    data = list(range(1, 101))
    p = Percentiles.from_samples([float(x) for x in data])
    assert p.count == 100
    assert p.p50 == pytest.approx(50.5)
    assert p.maximum == 100
    assert p.p99 >= p.p90 >= p.p50
    assert set(p.as_dict()) == {"count", "mean", "p50", "p90", "p99", "p99.9", "p99.99", "max"}


def test_cdf_points_monotone():
    data = [float(x) for x in range(1000)]
    points = cdf_points(data)
    latencies = [latency for latency, _ in points]
    assert latencies == sorted(latencies)
    assert points[0][1] == 0.0


def test_throughput():
    assert throughput(1000, 2000.0) == 500.0
    with pytest.raises(ValueError):
        throughput(10, 0.0)


def test_latency_recorder_basic():
    rec = LatencyRecorder()
    rec.record("ro", start=0.0, end=10.0)
    rec.record("ro", start=5.0, end=25.0)
    rec.record("rw", start=0.0, end=100.0)
    assert rec.count() == 3
    assert rec.count("ro") == 2
    assert rec.samples("ro") == [10.0, 20.0]
    assert rec.categories() == ["ro", "rw"]
    assert rec.duration_ms == 100.0
    assert rec.throughput() == pytest.approx(30.0)


def test_latency_recorder_validation():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record("x", start=10.0, end=5.0)
    with pytest.raises(ValueError):
        rec.record_latency("x", -1.0)


def test_latency_recorder_merge():
    a = LatencyRecorder()
    b = LatencyRecorder()
    a.record("read", 0.0, 5.0)
    b.record("read", 10.0, 30.0)
    b.record("write", 0.0, 1.0)
    a.merge(b)
    assert a.count("read") == 2
    assert a.count("write") == 1
    assert a.duration_ms == 30.0


def test_latency_recorder_memoized_results_unchanged():
    # Regression: percentiles()/cdf()/quantile() answers must be exactly the
    # values computed by the unmemoized module-level helpers, before and
    # after the sorted-sample cache is populated and invalidated.
    import random

    rng = random.Random(42)
    rec = LatencyRecorder()
    samples = [rng.uniform(0.1, 500.0) for _ in range(257)]
    for latency in samples:
        rec.record_latency("ro", latency)

    def check():
        expected = Percentiles.from_samples(rec.samples("ro"))
        for _ in range(2):  # second pass hits the memoized sort
            assert rec.percentiles("ro") == expected
            assert rec.cdf("ro") == cdf_points(rec.samples("ro"))
            for q in (0.0, 50.0, 99.0, 99.9, 100.0):
                assert rec.quantile("ro", q) == percentile(rec.samples("ro"), q)

    check()
    # Recording invalidates the cache; answers must track the new samples.
    rec.record_latency("ro", 0.05)
    check()
    other = LatencyRecorder()
    other.record_latency("ro", 1000.0)
    rec.merge(other)
    check()
    assert rec.percentiles("ro").maximum == 1000.0


def test_latency_recorder_sorted_samples_memoized_and_invalidated():
    rec = LatencyRecorder()
    for latency in (5.0, 1.0, 3.0):
        rec.record_latency("x", latency)
    first = rec.sorted_samples("x")
    assert first == [1.0, 3.0, 5.0]
    assert rec.sorted_samples("x") is first  # memoized between records
    rec.record_latency("x", 0.5)
    assert rec.sorted_samples("x") == [0.5, 1.0, 3.0, 5.0]
    assert rec.samples("x") == [5.0, 1.0, 3.0, 0.5]  # recording order kept


def test_percentile_sorted_matches_percentile():
    from repro.sim.stats import percentile_sorted

    data = [9.0, 2.0, 7.0, 2.0, 11.0]
    ordered = sorted(data)
    for q in (0, 10, 50, 90, 100):
        assert percentile_sorted(ordered, q) == percentile(data, q)
    with pytest.raises(ValueError):
        percentile_sorted([], 50)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200), st.floats(min_value=0, max_value=100))
def test_percentile_bounded_by_min_max(samples, q):
    value = percentile(samples, q)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
def test_percentile_monotone_in_q(samples):
    qs = [0, 25, 50, 75, 90, 99, 100]
    values = [percentile(samples, q) for q in qs]
    assert values == sorted(values)
