"""Unit tests for simulated clocks and latency statistics."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import LocalClock, TrueTime, TrueTimeInterval
from repro.sim.engine import Environment
from repro.sim.stats import LatencyRecorder, Percentiles, cdf_points, percentile, throughput


# --------------------------------------------------------------------- #
# Clocks
# --------------------------------------------------------------------- #
def test_local_clock_offset():
    env = Environment()
    clock = LocalClock(env, offset=5.0)
    assert clock.now() == 5.0

    def advance():
        yield env.timeout(10)

    env.process(advance())
    env.run()
    assert clock.now() == 15.0


def test_truetime_interval_contains_true_time():
    env = Environment()
    tt = TrueTime(env, epsilon=10.0)
    interval = tt.now()
    assert interval.earliest == -10.0
    assert interval.latest == 10.0
    assert interval.contains(0.0)
    assert interval.width == 20.0


def test_truetime_interval_validation():
    with pytest.raises(ValueError):
        TrueTimeInterval(earliest=5.0, latest=1.0)
    env = Environment()
    with pytest.raises(ValueError):
        TrueTime(env, epsilon=-1.0)
    with pytest.raises(ValueError):
        TrueTime(env, epsilon=1.0, min_epsilon=2.0)


def test_truetime_after_before():
    env = Environment()
    tt = TrueTime(env, epsilon=5.0)

    def advance():
        yield env.timeout(100)

    env.process(advance())
    env.run()
    assert tt.after(90.0)
    assert not tt.after(96.0)
    assert tt.before(106.0)
    assert not tt.before(104.0)


def test_truetime_commit_wait():
    env = Environment()
    tt = TrueTime(env, epsilon=7.0)
    done = []

    def committer():
        commit_ts = env.now + 3.0
        yield from tt.wait_until_after(commit_ts)
        done.append(env.now)

    env.process(committer())
    env.run()
    # Must wait until commit_ts (3.0) is strictly before now - epsilon.
    assert done and done[0] > 10.0


def test_truetime_jittered_epsilon_still_contains_truth():
    env = Environment()
    tt = TrueTime(env, epsilon=10.0, min_epsilon=2.0, jitter_rng=random.Random(1))
    for _ in range(50):
        interval = tt.now()
        assert interval.contains(env.now)
        assert 4.0 <= interval.width <= 20.0


# --------------------------------------------------------------------- #
# Percentiles / recorder
# --------------------------------------------------------------------- #
def test_percentile_simple():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 50) == 3.0
    assert percentile(data, 100) == 5.0
    assert percentile(data, 25) == 2.0


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_percentiles_bundle():
    data = list(range(1, 101))
    p = Percentiles.from_samples([float(x) for x in data])
    assert p.count == 100
    assert p.p50 == pytest.approx(50.5)
    assert p.maximum == 100
    assert p.p99 >= p.p90 >= p.p50
    assert set(p.as_dict()) == {"count", "mean", "p50", "p90", "p99", "p99.9", "p99.99", "max"}


def test_cdf_points_monotone():
    data = [float(x) for x in range(1000)]
    points = cdf_points(data)
    latencies = [latency for latency, _ in points]
    assert latencies == sorted(latencies)
    assert points[0][1] == 0.0


def test_throughput():
    assert throughput(1000, 2000.0) == 500.0
    with pytest.raises(ValueError):
        throughput(10, 0.0)


def test_latency_recorder_basic():
    rec = LatencyRecorder()
    rec.record("ro", start=0.0, end=10.0)
    rec.record("ro", start=5.0, end=25.0)
    rec.record("rw", start=0.0, end=100.0)
    assert rec.count() == 3
    assert rec.count("ro") == 2
    assert rec.samples("ro") == [10.0, 20.0]
    assert rec.categories() == ["ro", "rw"]
    assert rec.duration_ms == 100.0
    assert rec.throughput() == pytest.approx(30.0)


def test_latency_recorder_validation():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record("x", start=10.0, end=5.0)
    with pytest.raises(ValueError):
        rec.record_latency("x", -1.0)


def test_latency_recorder_merge():
    a = LatencyRecorder()
    b = LatencyRecorder()
    a.record("read", 0.0, 5.0)
    b.record("read", 10.0, 30.0)
    b.record("write", 0.0, 1.0)
    a.merge(b)
    assert a.count("read") == 2
    assert a.count("write") == 1
    assert a.duration_ms == 30.0


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200), st.floats(min_value=0, max_value=100))
def test_percentile_bounded_by_min_max(samples, q):
    value = percentile(samples, q)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
def test_percentile_monotone_in_q(samples):
    qs = [0, 25, 50, 75, 90, 99, 100]
    values = [percentile(samples, q) for q in qs]
    assert values == sorted(values)
