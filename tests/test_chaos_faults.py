"""FaultController semantics and its hook in the simulated Network."""

import pytest

from repro.chaos.faults import FaultController
from repro.sim.engine import Environment
from repro.sim.network import Network, single_dc


class Sink:
    site = "DC"

    def __init__(self):
        self.received = []

    def deliver(self, message):
        self.received.append(message)


def make_network(seed=0, jitter_ms=0.0):
    env = Environment()
    network = Network(env, latency=single_dc(["DC"]), jitter_ms=jitter_ms,
                      seed=seed)
    a, b = Sink(), Sink()
    network.register("a", a)
    network.register("b", b)
    return env, network, a, b


# --------------------------------------------------------------------------- #
# Controller semantics (transport-independent)
# --------------------------------------------------------------------------- #
class TestFaultController:
    def test_partition_drops_cross_group_traffic_only(self):
        faults = FaultController()
        faults.partition(["a", "b"], ["c"])
        assert faults.fate("a", "c", "m").drop
        assert faults.fate("c", "b", "m").drop
        assert not faults.fate("a", "b", "m").drop
        # Names in no group talk to everyone (clients straddle partitions).
        assert not faults.fate("outsider", "c", "m").drop
        assert not faults.fate("a", "outsider", "m").drop
        faults.heal()
        assert not faults.fate("a", "c", "m").drop
        assert faults.counters()["dropped"] == 2

    def test_isolation_cuts_both_directions_until_restore(self):
        faults = FaultController()
        faults.isolate("dead")
        assert faults.fate("dead", "a", "m").drop
        assert faults.fate("a", "dead", "m").drop
        assert not faults.fate("a", "b", "m").drop
        faults.restore("dead")
        assert not faults.fate("dead", "a", "m").drop

    def test_drop_rule_filters_on_src_dst_and_kind(self):
        faults = FaultController()
        faults.drop_matching(src="a", kinds=["read1"])
        assert faults.fate("a", "b", "read1").drop
        assert not faults.fate("a", "b", "write2").drop
        assert not faults.fate("b", "a", "read1").drop
        faults.clear_rules()
        assert not faults.fate("a", "b", "read1").drop

    def test_probabilistic_drop_respects_its_probability(self):
        faults = FaultController(seed=7)
        faults.drop_matching(probability=0.3)
        dropped = sum(faults.fate("a", "b", "m").drop for _ in range(2_000))
        assert 450 < dropped < 750    # ~600 expected

    def test_delay_rule_bounds_and_reorder_flag(self):
        faults = FaultController(seed=1)
        faults.delay_matching(extra_ms=20.0, jitter_ms=5.0, reorder=True)
        for _ in range(100):
            fate = faults.fate("a", "b", "m")
            assert not fate.drop and fate.reorder
            assert 20.0 <= fate.extra_delay_ms <= 25.0
        assert faults.counters()["delayed"] == 100

    def test_same_seed_gives_the_same_fate_sequence(self):
        def fates(seed):
            faults = FaultController(seed=seed)
            faults.drop_matching(probability=0.5)
            faults.delay_matching(extra_ms=1.0, jitter_ms=3.0,
                                  probability=0.5)
            return [faults.fate("a", "b", "m") for _ in range(50)]

        assert fates(3) == fates(3)
        assert fates(3) != fates(4)

    def test_active_reflects_installed_faults(self):
        faults = FaultController()
        assert not faults.active
        faults.partition(["a"], ["b"])
        assert faults.active
        faults.heal()
        faults.isolate("a")
        assert faults.active
        faults.restore("a")
        faults.drop_matching()
        assert faults.active
        faults.clear_rules()
        assert not faults.active


# --------------------------------------------------------------------------- #
# The simulated network honors the controller
# --------------------------------------------------------------------------- #
class TestSimNetworkFaults:
    def test_dropped_message_never_arrives_but_is_accounted(self):
        env, network, _, b = make_network()
        network.faults = FaultController()
        network.faults.drop_matching(src="a", dst="b")
        message = network.send("a", "b", "ping", {})
        env.run()
        assert message.deliver_time == -1.0
        assert b.received == []
        assert network.messages_sent == 1
        assert network.faults.counters()["dropped"] == 1

    def test_reordered_message_is_overtaken_by_later_traffic(self):
        env, network, _, b = make_network()
        network.faults = FaultController()
        network.faults.delay_matching(extra_ms=50.0, kinds=["slow"],
                                      reorder=True)
        network.send("a", "b", "slow", {"n": 1})
        network.send("a", "b", "fast", {"n": 2})
        env.run()
        assert [m.kind for m in b.received] == ["fast", "slow"]

    def test_delay_without_reorder_keeps_channel_fifo(self):
        env, network, _, b = make_network()
        network.faults = FaultController()
        network.faults.delay_matching(extra_ms=50.0, kinds=["slow"],
                                      reorder=False)
        network.send("a", "b", "slow", {"n": 1})
        network.send("a", "b", "fast", {"n": 2})
        env.run()
        # The FIFO clamp pushes the later message behind the delayed one.
        assert [m.kind for m in b.received] == ["slow", "fast"]

    def test_idle_controller_leaves_the_schedule_untouched(self):
        """An attached-but-empty controller must not perturb delivery times
        (and faults=None trivially so) — the byte-identity guarantee all
        fault-free experiments rely on."""
        def deliver_times(faults):
            env, network, _, _b = make_network(seed=11, jitter_ms=2.0)
            network.faults = faults
            times = [network.send("a", "b", f"m{i}", {}).deliver_time
                     for i in range(20)]
            env.run()
            return times

        assert deliver_times(None) == deliver_times(FaultController())

    def test_send_to_deregistered_node_raises(self):
        env, network, _, _b = make_network()
        network.deregister("b")
        network.deregister("b")   # idempotent
        with pytest.raises(KeyError):
            network.send("a", "b", "ping", {})
