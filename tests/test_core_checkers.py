"""Unit tests for the consistency-model checkers, including the paper's
Appendix A example executions."""

import pytest

from repro.core.events import Operation
from repro.core.examples import (
    all_examples,
    figure_2,
    figure_9,
    figure_10,
    figure_11,
    figure_13,
    figure_14,
    figure_15,
    figure_16,
)
from repro.core.history import History
from repro.core.specification import RegisterSpec, TransactionalKVSpec
from repro.core.checkers import (
    MODELS,
    check_causal_consistency,
    check_crdb,
    check_linearizability,
    check_mwr_weak,
    check_osc_u,
    check_po_serializability,
    check_real_time_causal,
    check_rsc,
    check_rss,
    check_sequential_consistency,
    check_strict_serializability,
    check_strong_snapshot_isolation,
    check_vv_regularity,
)


# --------------------------------------------------------------------- #
# Basic linearizability / SC sanity
# --------------------------------------------------------------------- #
def sequential_history():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    h.add(Operation.read("P2", "x", 1, invoked_at=20, responded_at=30))
    h.add(Operation.write("P1", "x", 2, invoked_at=40, responded_at=50))
    h.add(Operation.read("P2", "x", 2, invoked_at=60, responded_at=70))
    return h


def test_linearizable_history_accepted_by_all_models():
    h = sequential_history()
    spec = RegisterSpec()
    assert check_linearizability(h, spec)
    assert check_rsc(h, spec)
    assert check_sequential_consistency(h, spec)
    assert check_causal_consistency(h, spec)
    assert check_real_time_causal(h, spec)
    assert check_vv_regularity(h, spec)
    assert check_osc_u(h, spec)
    assert check_mwr_weak(h, spec)


def test_stale_read_rejected_by_linearizability_and_rsc():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    h.add(Operation.read("P2", "x", None, invoked_at=20, responded_at=30))
    assert not check_linearizability(h)
    assert not check_rsc(h)
    assert check_sequential_consistency(h)


def test_concurrent_write_read_old_value_is_linearizable():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=100))
    h.add(Operation.read("P2", "x", None, invoked_at=10, responded_at=20))
    assert check_linearizability(h)
    assert check_rsc(h)


def test_pending_write_observed_by_read_is_linearizable():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0))  # never responds
    h.add(Operation.read("P2", "x", 1, invoked_at=50, responded_at=60))
    assert check_linearizability(h)
    assert check_rsc(h)


def test_pending_write_never_observed_can_be_dropped():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0))
    h.add(Operation.read("P2", "x", None, invoked_at=50, responded_at=60))
    assert check_linearizability(h)


def test_witness_returned_is_legal_order():
    h = sequential_history()
    result = check_linearizability(h)
    assert result.satisfied
    assert RegisterSpec().legal(result.witness)
    assert len(result.witness) == 4


def test_process_order_violation_rejected_even_by_sequential_consistency():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    h.add(Operation.write("P1", "x", 2, invoked_at=2, responded_at=3))
    h.add(Operation.read("P1", "x", 1, invoked_at=4, responded_at=5))
    assert not check_sequential_consistency(h)
    assert not check_causal_consistency(h)


def test_rmw_atomicity_under_linearizability():
    h = History()
    h.add(Operation.rmw("P1", "c", observed=None, new_value=1,
                        invoked_at=0, responded_at=10))
    h.add(Operation.rmw("P2", "c", observed=None, new_value=2,
                        invoked_at=20, responded_at=30))
    # Second rmw observed the initial value despite following the first.
    assert not check_linearizability(h)
    assert not check_rsc(h)


# --------------------------------------------------------------------- #
# Transactional checkers
# --------------------------------------------------------------------- #
def test_strict_serializability_simple_commit_order():
    h = History()
    h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": 1},
                           invoked_at=0, responded_at=10))
    h.add(Operation.ro_txn("P2", read_set={"a": 1}, invoked_at=20, responded_at=30))
    assert check_strict_serializability(h)
    assert check_rss(h)
    assert check_po_serializability(h)


def test_fractured_read_rejected_by_all_serializable_models():
    h = History()
    h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": 1, "b": 1},
                           invoked_at=0, responded_at=10))
    h.add(Operation.ro_txn("P2", read_set={"a": 1, "b": None},
                           invoked_at=20, responded_at=30))
    assert not check_strict_serializability(h)
    assert not check_rss(h)
    assert not check_po_serializability(h)


def test_rss_allows_stale_read_only_txn_for_concurrent_write():
    h = History()
    h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": 1},
                           invoked_at=0, responded_at=100))
    h.add(Operation.ro_txn("P2", read_set={"a": 1}, invoked_at=10, responded_at=20))
    h.add(Operation.ro_txn("P3", read_set={"a": None}, invoked_at=30, responded_at=40))
    # P3's stale read violates strict serializability (P2 already saw the
    # write and finished) but is fine under RSS: P2 and P3 are causally
    # unrelated and the write has not completed.
    assert not check_strict_serializability(h)
    assert check_rss(h)


def test_rss_enforces_causal_constraint_via_message_edge():
    h = History()
    h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": 1},
                           invoked_at=0, responded_at=100))
    seen = h.add(Operation.ro_txn("P2", read_set={"a": 1},
                                  invoked_at=10, responded_at=20))
    stale = h.add(Operation.ro_txn("P3", read_set={"a": None},
                                   invoked_at=30, responded_at=40))
    h.add_message_edge(seen, stale)  # P2 called P3 in between.
    assert not check_rss(h)


def test_rss_enforces_completed_write_visibility():
    h = History()
    h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": 1},
                           invoked_at=0, responded_at=10))
    h.add(Operation.ro_txn("P2", read_set={"a": None}, invoked_at=20, responded_at=30))
    assert not check_rss(h)
    assert check_po_serializability(h)


# --------------------------------------------------------------------- #
# Paper examples (Figure 2 and Appendix A)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("example", all_examples(), ids=lambda e: e.name)
def test_paper_examples_match_expected_verdicts(example):
    for model, expected in example.expectations.items():
        checker = MODELS[model]
        result = checker(example.history, example.spec)
        assert bool(result) == expected, (
            f"{example.name}: model {model} expected "
            f"{'allowed' if expected else 'forbidden'} but checker says "
            f"{'allowed' if result else 'forbidden'} ({result.reason})"
        )


def test_figure_9_invariant_breaking_read():
    example = figure_9()
    assert not check_rss(example.history, example.spec)
    assert check_crdb(example.history, example.spec)


def test_figure_11_write_skew():
    example = figure_11()
    assert check_strong_snapshot_isolation(example.history, example.spec)
    assert not check_rss(example.history, example.spec)


def test_strong_si_rejects_lost_update():
    h = History()
    h.add(Operation.rw_txn("P1", read_set={"x": 0}, write_set={"x": 1},
                           invoked_at=0, responded_at=10))
    h.add(Operation.rw_txn("P2", read_set={"x": 0}, write_set={"x": 2},
                           invoked_at=0, responded_at=10))
    spec = TransactionalKVSpec(initial={"x": 0})
    assert not check_strong_snapshot_isolation(h, spec)


def test_strong_si_respects_real_time():
    h = History()
    h.add(Operation.rw_txn("P1", read_set={}, write_set={"x": 1},
                           invoked_at=0, responded_at=10))
    h.add(Operation.ro_txn("P2", read_set={"x": 0}, invoked_at=20, responded_at=30))
    spec = TransactionalKVSpec(initial={"x": 0})
    assert not check_strong_snapshot_isolation(h, spec)


# --------------------------------------------------------------------- #
# Model-strength relationships on targeted executions
# --------------------------------------------------------------------- #
def test_linearizability_implies_rsc_on_examples():
    for example in all_examples():
        if any(op.is_transaction for op in example.history):
            continue
        if check_linearizability(example.history, example.spec):
            assert check_rsc(example.history, example.spec)


def test_rsc_implies_sequential_consistency_on_examples():
    for example in all_examples():
        if any(op.is_transaction for op in example.history):
            continue
        if check_rsc(example.history, example.spec):
            assert check_sequential_consistency(example.history, example.spec)


def test_strict_serializability_implies_rss_implies_po():
    for example in all_examples():
        if not any(op.is_transaction for op in example.history):
            continue
        if check_strict_serializability(example.history, example.spec):
            assert check_rss(example.history, example.spec)
        if check_rss(example.history, example.spec):
            assert check_po_serializability(example.history, example.spec)
