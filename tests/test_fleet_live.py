"""Live fleet runs over real asyncio TCP: routing, cross-group
transactions, online migration under load, and the single-group
degenerate equivalence.

These tests bind ephemeral ports (``base_port=0``); the server
:class:`~repro.net.cluster.LiveProcess` and the client
:class:`~repro.api.store.FleetStore` share the same ``NodeSpec`` objects,
so the bound ports propagate automatically.
"""

import asyncio

import pytest

from repro.api import UnsupportedOperationError, open_store
from repro.api.adapters import FleetGryffSession, GryffSession
from repro.api.store import FleetStore, LiveStore
from repro.fleet.migration import MigrationPlan
from repro.fleet.spec import FleetSpec
from repro.net.cluster import LiveProcess
from repro.net.load import run_load
from repro.net.recorder import read_trace
from repro.net.spec import ClusterSpec


def _run(coro):
    return asyncio.run(coro)


async def _with_fleet(fleet, body):
    server = LiveProcess(fleet.merged_spec(),
                         node_configs=fleet.node_configs())
    await server.start()
    try:
        return await body()
    finally:
        await server.stop()


# --------------------------------------------------------------------------- #
# Split AND merge under open-loop load (the tentpole acceptance run)
# --------------------------------------------------------------------------- #
class TestMigrationUnderLoad:
    def test_three_group_split_and_merge_open_loop(self, tmp_path):
        fleet = FleetSpec.build(protocol="gryff-rsc", num_groups=3,
                                base_port=0, placement_seed=1)
        # Pick ranges dynamically so the merge actually changes ownership:
        # split bisects a g1-owned range toward g2, then the merge absorbs
        # a g2-owned range into g0.
        mid_of = {r.group: (r.lo + r.hi) / 2 for r in
                  fleet.placement.ranges()}
        split_frac = mid_of["g1"] / (1 << 32)
        merge_frac = mid_of["g2"] / (1 << 32)
        plans = [MigrationPlan.parse(f"400:split:{split_frac:.6f}:g2"),
                 MigrationPlan.parse(f"1200:merge:{merge_frac:.6f}:g0")]

        async def body():
            return await run_load(
                fleet, num_clients=4, duration_ms=2200.0, seed=7,
                rate=400.0, open_loop=True,
                trace_path=str(tmp_path / "fleet3.jsonl"),
                check_inline=True, check_min_epoch_ops=16,
                migrations=plans,
                migration_journal=str(tmp_path / "fleet3.journal"))

        summary = _run(_with_fleet(fleet, body))
        assert summary["ops"] > 100
        migration = summary["migration"]
        assert migration["crashed"] is False
        assert len(migration["migrations"]) == 2
        # Two flips: epoch 1 -> 3.
        assert migration["placement_epoch"] == 3
        # Zero lost/duplicated operations: the streaming checker validated
        # the declared level across both reconfiguration boundaries.
        assert summary["check"]["satisfied"] is True
        for mig in migration["migrations"]:
            assert mig["epoch_after"] == mig["epoch_before"] + 1
            assert mig["pause_ms"] >= 0.0
        # Migration windows are reported chaos-style but expect_clean.
        assert all(w["expect"] == "clean" for w in migration["windows"])

    def test_spanner_migration_under_load(self, tmp_path):
        fleet = FleetSpec.build(protocol="spanner-rss", num_groups=2,
                                nodes_per_group=2, base_port=0)

        async def body():
            return await run_load(
                fleet, num_clients=3, duration_ms=1500.0, seed=5,
                conflict_rate=0.3, check_inline=True, check_min_epoch_ops=16,
                migrations=[MigrationPlan.parse("500:split:0.5:g1")],
                migration_journal=str(tmp_path / "sp.journal"))

        summary = _run(_with_fleet(fleet, body))
        assert summary["ops"] > 0
        assert summary["migration"]["crashed"] is False
        assert len(summary["migration"]["migrations"]) == 1
        assert summary["check"]["satisfied"] is True


# --------------------------------------------------------------------------- #
# Cross-group transactions
# --------------------------------------------------------------------------- #
class TestCrossGroup:
    def test_spanner_txn_and_read_only_span_groups(self):
        fleet = FleetSpec.build(protocol="spanner-rss", num_groups=2,
                                nodes_per_group=2, base_port=0)
        placement = fleet.placement
        key_a = next(f"k{i}" for i in range(1000)
                     if placement.owner(f"k{i}") == "g0")
        key_b = next(f"k{i}" for i in range(1000)
                     if placement.owner(f"k{i}") == "g1")

        async def body():
            store = FleetStore(fleet)
            session = store.session()
            assert "fleet_routing" in session.capabilities
            await store.start()
            try:
                env = store.env

                def txn():
                    # One transaction writing keys owned by both groups:
                    # routed through the unmodified cross-group 2PC.
                    result = yield from session.txn(
                        [], lambda reads: {key_a: "va", key_b: "vb"})
                    return result

                def snapshot():
                    result = yield from session.read_only([key_a, key_b])
                    return result

                await env.as_future(env.process(txn()))
                values = await env.as_future(env.process(snapshot()))
            finally:
                await store.stop()
            return values

        values = _run(_with_fleet(fleet, body))
        assert values == {key_a: "va", key_b: "vb"}

    def test_gryff_multi_key_shapes_rejected(self):
        fleet = FleetSpec.build(protocol="gryff-rsc", num_groups=2,
                                base_port=0)
        store = FleetStore(fleet)
        session = store.session()
        # Rejected at the session surface (capability-negotiated): no
        # server round trip happens, so no cluster is needed.
        with pytest.raises(UnsupportedOperationError, match="multi-key"):
            session.txn([], lambda reads: {"a": 1, "b": 2})
        with pytest.raises(UnsupportedOperationError, match="multi-key"):
            session.read_only(["a", "b"])
        with pytest.raises(UnsupportedOperationError, match="read sets"):
            session.txn(["a"], lambda reads: {"a": 1})


# --------------------------------------------------------------------------- #
# Capabilities
# --------------------------------------------------------------------------- #
class TestCapabilities:
    def test_fleet_sessions_advertise_routing(self):
        fleet = FleetSpec.build(protocol="gryff-rsc", num_groups=2,
                                base_port=0)
        session = FleetStore(fleet).session()
        assert isinstance(session, FleetGryffSession)
        assert "fleet_routing" in session.capabilities

    def test_plain_sessions_do_not(self):
        assert "fleet_routing" not in GryffSession.capabilities
        spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
        assert "fleet_routing" not in LiveStore(spec).session().capabilities

    def test_open_store_dispatches_fleet_files(self, tmp_path):
        fleet = FleetSpec.build(num_groups=2, base_port=0)
        path = str(tmp_path / "fleet.json")
        fleet.save(path)
        store = open_store(f"live:{path}")
        assert isinstance(store, FleetStore)
        assert store.fleet.group_ids() == ["g0", "g1"]
        cluster_path = str(tmp_path / "cluster.json")
        ClusterSpec.gryff(num_replicas=3, base_port=0).save(cluster_path)
        plain = open_store(f"live:{cluster_path}")
        assert isinstance(plain, LiveStore)
        assert not isinstance(plain, FleetStore)


# --------------------------------------------------------------------------- #
# Single-group degenerate fleet == plain LiveStore
# --------------------------------------------------------------------------- #
class TestDegenerateFleet:
    def test_single_group_run_matches_livestore_shape(self, tmp_path):
        """A 1-group fleet adds zero events and zero record types.

        Same closed-loop workload, same seed, against a standalone cluster
        and a single-group fleet: the traces must contain identical record
        types, identical op types, identical per-process op counts, and
        the same checker verdict — the fleet layer is invisible when there
        is nothing to route between.
        """
        fleet = FleetSpec.build(protocol="gryff-rsc", num_groups=1,
                                base_port=0)
        spec = ClusterSpec.gryff(num_replicas=3, base_port=0)
        kwargs = dict(num_clients=2, duration_ms=None, ops_per_client=25,
                      seed=17, check_inline=True, check_min_epoch_ops=16)

        async def fleet_body():
            return await run_load(
                fleet, trace_path=str(tmp_path / "fleet1.jsonl"), **kwargs)

        async def plain_body():
            server = LiveProcess(spec)
            await server.start()
            try:
                return await run_load(
                    spec, trace_path=str(tmp_path / "plain.jsonl"), **kwargs)
            finally:
                await server.stop()

        fleet_summary = _run(_with_fleet(fleet, fleet_body))
        plain_summary = _run(plain_body())

        assert fleet_summary["ops"] == plain_summary["ops"] == 50
        assert fleet_summary["check"]["satisfied"] is True
        assert plain_summary["check"]["satisfied"] is True
        # Everything routed to the only group; no pauses, no mirrors.
        assert fleet_summary["routed_ops"] == {"g0": 50}

        def shape(path):
            meta, history = read_trace(path)
            types = sorted({op.op_type.name for op in history})
            per_process = sorted(len(history.by_process(p))
                                 for p in history.processes())
            return types, per_process, len(history)

        assert shape(str(tmp_path / "fleet1.jsonl")) == \
            shape(str(tmp_path / "plain.jsonl"))
