"""Tests for the photo-sharing application: Table 1 scenarios and the
runnable app on top of Spanner-RSS + messaging + libRSS."""

import pytest

from repro.apps.invariants import album_photos_all_present, worker_jobs_all_resolvable
from repro.apps.messaging import MessageQueueClient, MessageQueueServer
from repro.apps.photo_sharing import PhotoSharingApp, table1_scenarios
from repro.core.checkers import TRANSACTIONAL_MODELS
from repro.sim.engine import Environment
from repro.sim.network import Network, single_dc
from repro.spanner.cluster import SpannerCluster
from repro.spanner.config import SpannerConfig, Variant


# --------------------------------------------------------------------- #
# Messaging service
# --------------------------------------------------------------------- #
def test_message_queue_fifo_round_trip():
    env = Environment()
    network = Network(env, single_dc(["CA"], rtt_ms=1.0))
    MessageQueueServer(env, network, name="mq", site="CA")
    client = MessageQueueClient(env, network, name="producer", site="CA")
    consumer = MessageQueueClient(env, network, name="consumer", site="CA",
                                  history=client.history)
    out = []

    def workload():
        yield from client.enqueue("jobs", "a")
        yield from client.enqueue("jobs", "b")
        out.append((yield from consumer.dequeue("jobs")))
        out.append((yield from consumer.dequeue("jobs")))
        out.append((yield from consumer.dequeue("jobs")))

    env.process(workload())
    env.run()
    assert out == ["a", "b", None]
    ops = client.history.operations()
    assert len(ops) == 5
    assert all(op.service == "queue" for op in ops)


# --------------------------------------------------------------------- #
# Table 1 scenarios
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("scenario", table1_scenarios(), ids=lambda s: s.name)
def test_table1_scenarios_match_expected_verdicts(scenario):
    for model, expected_admitted in scenario.admitted_by.items():
        checker = TRANSACTIONAL_MODELS[model]
        result = checker(scenario.history, scenario.spec)
        assert bool(result) == expected_admitted, (
            f"{scenario.name}: {model} expected "
            f"{'admitted' if expected_admitted else 'rejected'}, got "
            f"{'admitted' if result else 'rejected'} ({result.reason})"
        )


def test_table1_invariants_summary():
    """I1 holds under all three models; I2 fails only under PO serializability."""
    scenarios = {s.name: s for s in table1_scenarios()}
    i1 = scenarios["i1_violation"]
    i2 = scenarios["i2_violation"]
    assert not any(i1.admitted_by.values())
    assert i2.admitted_by["po_serializability"]
    assert not i2.admitted_by["rss"]
    assert not i2.admitted_by["strict_serializability"]


def test_table1_a3_is_only_temporarily_possible_under_rss():
    scenarios = {s.name: s for s in table1_scenarios()}
    assert scenarios["a3_during_write"].admitted_by["rss"] is True
    assert scenarios["a3_after_write_completes"].admitted_by["rss"] is False


# --------------------------------------------------------------------- #
# Runnable application
# --------------------------------------------------------------------- #
def build_app(variant=Variant.SPANNER_RSS):
    from repro.api import open_store

    store = open_store(SpannerCluster(SpannerConfig(variant=variant)))
    app = PhotoSharingApp(store)
    return store.cluster, app


def test_photo_sharing_end_to_end_invariants():
    cluster, app = build_app()
    alice_server = app.new_web_server("CA", name="alice-web")
    bob_server = app.new_web_server("VA", name="bob-web")
    worker = app.new_web_server("IR", name="worker")

    def alice():
        yield from app.add_photo(alice_server, "alice", "p1", "photo-1-bytes")
        yield from app.add_photo(alice_server, "alice", "p2", "photo-2-bytes")

    def background_worker():
        processed = 0
        while processed < 2:
            result = yield from app.process_next_job(worker)
            if result is None:
                yield cluster.env.timeout(50)
            else:
                processed += 1

    def bob(delay):
        yield cluster.env.timeout(delay)
        yield from app.view_album(bob_server, "alice")

    cluster.spawn(alice())
    cluster.spawn(background_worker())
    cluster.spawn(bob(1500))
    cluster.spawn(bob(3000))
    cluster.run()

    # I2: every job the worker processed resolved to photo data.
    assert len(app.job_results) == 2
    assert worker_jobs_all_resolvable(app.job_results)
    # I1: every album view contains data for every referenced photo.
    assert app.album_views
    assert album_photos_all_present(app.album_views)
    # The final view (well after both adds) contains both photos.
    assert set(app.album_views[-1]) == {"p1", "p2"}
    # The kv-store part of the execution satisfies RSS.
    kv_history = cluster.history.restricted_to_service("kv")
    assert kv_history.operations()
    result = cluster.check_consistency()
    assert result.satisfied, result.reason


def test_photo_sharing_librss_issues_fences_on_service_switches():
    cluster, app = build_app()
    server = app.new_web_server("CA", name="web")

    def workload():
        yield from app.add_photo(server, "alice", "p1", "bytes")

    cluster.spawn(workload())
    cluster.run()
    # add_photo switches kv -> queue, so exactly one kv fence is issued.
    assert app.librss.fences_issued(server.name) == 1
    assert [record.service for record in app.librss.fence_log] == ["kv"]


def test_photo_sharing_worker_switches_back_and_forth():
    cluster, app = build_app()
    server = app.new_web_server("CA", name="web")
    worker = app.new_web_server("VA", name="worker")

    def workload():
        yield from app.add_photo(server, "alice", "p1", "bytes")
        result = yield from app.process_next_job(worker)
        assert result == ("p1", "bytes")

    cluster.spawn(workload())
    cluster.run()
    # The worker switches queue -> kv, issuing a queue fence (a no-op).
    assert app.librss.fences_issued(worker.name) == 1
    assert worker_jobs_all_resolvable(app.job_results)


def test_photo_sharing_view_album_empty():
    cluster, app = build_app()
    server = app.new_web_server("CA")
    views = []

    def workload():
        view = yield from app.view_album(server, "nobody")
        views.append(view)

    cluster.spawn(workload())
    cluster.run()
    assert views == [{}]


def test_photo_sharing_accepts_raw_cluster_with_deprecation():
    cluster = SpannerCluster(SpannerConfig(variant=Variant.SPANNER_RSS))
    with pytest.warns(DeprecationWarning, match="open_store"):
        app = PhotoSharingApp(cluster)
    assert app.store.cluster is cluster


def test_photo_sharing_rejects_unsuitable_stores():
    from repro.api import UnsupportedOperationError, open_store

    with pytest.raises(UnsupportedOperationError, match="multi_key_txn"):
        PhotoSharingApp(open_store("sim-gryff"))
