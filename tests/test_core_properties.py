"""Property-based tests for the consistency-model checkers.

Two families:

* Histories generated from a *linearizable oracle* (operations take effect
  atomically at invocation) must be accepted by every model at or below
  linearizability in Figure 12's lattice.
* For arbitrary small histories, the model-strength implications proved in
  the paper must hold between checker verdicts: linearizability ⟹ RSC ⟹
  sequential consistency ⟹ causal, and strict serializability ⟹ RSS ⟹
  PO serializability.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.events import Operation
from repro.core.history import History
from repro.core.specification import RegisterSpec, TransactionalKVSpec
from repro.core.checkers import (
    check_causal_consistency,
    check_linearizability,
    check_po_serializability,
    check_real_time_causal,
    check_rsc,
    check_rss,
    check_sequential_consistency,
    check_strict_serializability,
    check_vv_regularity,
    check_osc_u,
)

KEYS = ["x", "y"]
PROCESSES = ["P1", "P2", "P3"]


# --------------------------------------------------------------------- #
# Oracle-generated linearizable histories
# --------------------------------------------------------------------- #
@st.composite
def linearizable_history(draw):
    """Generate a history by running ops atomically at their invocation."""
    n_ops = draw(st.integers(min_value=1, max_value=6))
    state = {}
    busy_until = {p: 0.0 for p in PROCESSES}
    h = History()
    time = 0.0
    counter = itertools.count(1)
    for _ in range(n_ops):
        process = draw(st.sampled_from(PROCESSES))
        key = draw(st.sampled_from(KEYS))
        is_write = draw(st.booleans())
        gap = draw(st.integers(min_value=0, max_value=3))
        duration = draw(st.integers(min_value=1, max_value=5))
        start = max(time + gap, busy_until[process])
        end = start + duration
        if is_write:
            value = f"v{next(counter)}"
            state[key] = value
            h.add(Operation.write(process, key, value,
                                  invoked_at=start, responded_at=end))
        else:
            h.add(Operation.read(process, key, state.get(key),
                                 invoked_at=start, responded_at=end))
        busy_until[process] = end
        time = start
    return h


@settings(max_examples=60, deadline=None)
@given(linearizable_history())
def test_oracle_histories_accepted_down_the_lattice(history):
    spec = RegisterSpec()
    assert check_linearizability(history, spec)
    assert check_rsc(history, spec)
    assert check_vv_regularity(history, spec)
    assert check_osc_u(history, spec)
    assert check_sequential_consistency(history, spec)
    assert check_real_time_causal(history, spec)
    assert check_causal_consistency(history, spec)


# --------------------------------------------------------------------- #
# Arbitrary histories: implication relationships between checkers
# --------------------------------------------------------------------- #
@st.composite
def arbitrary_register_history(draw):
    n_ops = draw(st.integers(min_value=1, max_value=6))
    h = History()
    values = [f"u{i}" for i in range(1, n_ops + 1)]
    busy_until = {p: 0.0 for p in PROCESSES}
    written = []
    for index in range(n_ops):
        process = draw(st.sampled_from(PROCESSES))
        key = draw(st.sampled_from(KEYS))
        start = max(draw(st.integers(min_value=0, max_value=20)), busy_until[process])
        duration = draw(st.integers(min_value=1, max_value=10))
        end = start + duration
        if draw(st.booleans()):
            value = values[index]
            written.append(value)
            h.add(Operation.write(process, key, value,
                                  invoked_at=start, responded_at=end))
        else:
            result = draw(st.sampled_from([None] + written)) if written else None
            h.add(Operation.read(process, key, result,
                                 invoked_at=start, responded_at=end))
        busy_until[process] = end
    return h


@settings(max_examples=60, deadline=None)
@given(arbitrary_register_history())
def test_model_strength_implications_register(history):
    spec = RegisterSpec()
    lin = bool(check_linearizability(history, spec))
    rsc = bool(check_rsc(history, spec))
    sc = bool(check_sequential_consistency(history, spec))
    causal = bool(check_causal_consistency(history, spec))
    rtc = bool(check_real_time_causal(history, spec))
    if lin:
        assert rsc
    if rsc:
        assert sc
        assert rtc
    if sc:
        assert causal
    if rtc:
        assert causal


@st.composite
def arbitrary_txn_history(draw):
    n_ops = draw(st.integers(min_value=1, max_value=5))
    h = History()
    busy_until = {p: 0.0 for p in PROCESSES}
    written_values = {k: [] for k in KEYS}
    counter = itertools.count(1)
    for _ in range(n_ops):
        process = draw(st.sampled_from(PROCESSES))
        start = max(draw(st.integers(min_value=0, max_value=20)), busy_until[process])
        end = start + draw(st.integers(min_value=1, max_value=10))
        read_keys = draw(st.sets(st.sampled_from(KEYS), max_size=2))
        read_set = {}
        for key in read_keys:
            choices = [None] + written_values[key]
            read_set[key] = draw(st.sampled_from(choices))
        if draw(st.booleans()):
            write_keys = draw(st.sets(st.sampled_from(KEYS), min_size=1, max_size=2))
            write_set = {}
            for key in write_keys:
                value = f"t{next(counter)}"
                written_values[key].append(value)
                write_set[key] = value
            h.add(Operation.rw_txn(process, read_set=read_set, write_set=write_set,
                                   invoked_at=start, responded_at=end))
        else:
            h.add(Operation.ro_txn(process, read_set=read_set,
                                   invoked_at=start, responded_at=end))
        busy_until[process] = end
    return h


@settings(max_examples=60, deadline=None)
@given(arbitrary_txn_history())
def test_model_strength_implications_transactions(history):
    spec = TransactionalKVSpec()
    strict = bool(check_strict_serializability(history, spec))
    rss = bool(check_rss(history, spec))
    po = bool(check_po_serializability(history, spec))
    if strict:
        assert rss
    if rss:
        assert po
