"""Unit tests for the real-time and causal orders."""

import pytest

from repro.core.events import Operation
from repro.core.history import History
from repro.core.relations import (
    AmbiguousReadsFrom,
    CausalOrder,
    RealTimeOrder,
    conflicting_read_onlys,
    regular_constraint_edges,
)


def build_simple_history():
    h = History()
    w = h.add(Operation.write("P1", "x", "v1", invoked_at=0, responded_at=10))
    r1 = h.add(Operation.read("P2", "x", "v1", invoked_at=20, responded_at=30))
    r2 = h.add(Operation.read("P2", "y", None, invoked_at=40, responded_at=50))
    r3 = h.add(Operation.read("P3", "x", None, invoked_at=5, responded_at=8))
    return h, w, r1, r2, r3


def test_real_time_precedence():
    h, w, r1, r2, r3 = build_simple_history()
    rt = RealTimeOrder(h)
    assert rt.precedes(w, r1)
    assert rt.precedes(r1, r2)
    assert not rt.precedes(r1, w)
    assert rt.concurrent(w, r3)
    assert not rt.precedes(r1, r1)


def test_real_time_pending_never_precedes():
    h = History()
    pending = h.add(Operation.write("P1", "x", 1, invoked_at=0))
    later = h.add(Operation.read("P2", "x", 1, invoked_at=100, responded_at=110))
    rt = RealTimeOrder(h)
    assert not rt.precedes(pending, later)


def test_real_time_same_process_equal_timestamps_ordered():
    h = History()
    a = h.add(Operation.read("P1", "x", 0, invoked_at=0, responded_at=5))
    b = h.add(Operation.read("P1", "x", 0, invoked_at=5, responded_at=9))
    rt = RealTimeOrder(h)
    assert rt.precedes(a, b)
    assert not rt.precedes(b, a)


def test_causal_process_order_and_reads_from():
    h, w, r1, r2, r3 = build_simple_history()
    causal = CausalOrder(h)
    assert causal.precedes(w, r1)          # reads-from
    assert causal.precedes(r1, r2)         # process order
    assert causal.precedes(w, r2)          # transitivity
    assert not causal.precedes(r3, w)
    assert causal.concurrent(r3, r1)
    assert not causal.has_cycle()


def test_causal_message_edges():
    h = History()
    a = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    b = h.add(Operation.read("P2", "y", None, invoked_at=10, responded_at=11))
    causal = CausalOrder(h)
    assert not causal.precedes(a, b)
    h.add_message_edge(a, b)
    causal = CausalOrder(h)
    assert causal.precedes(a, b)


def test_causal_reads_from_initial_value_is_ignored():
    h = History()
    h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=1))
    r = h.add(Operation.read("P2", "x", None, invoked_at=2, responded_at=3))
    causal = CausalOrder(h)
    assert all(dst != r.op_id for _, dst in causal.edges() if _ != r.op_id) or True
    # No reads-from edge exists because the read observed the initial value.
    assert not any(src != r.op_id and dst == r.op_id for src, dst in causal.edges())


def test_causal_ambiguous_reads_from_raises():
    h = History()
    h.add(Operation.write("P1", "x", "dup", invoked_at=0, responded_at=1))
    h.add(Operation.write("P2", "x", "dup", invoked_at=0, responded_at=1))
    h.add(Operation.read("P3", "x", "dup", invoked_at=2, responded_at=3))
    with pytest.raises(AmbiguousReadsFrom):
        CausalOrder(h)
    # Non-strict mode picks one writer instead of raising.
    causal = CausalOrder(h, strict_reads_from=False)
    assert causal.edges()


def test_causal_respects_total_order():
    h, w, r1, r2, r3 = build_simple_history()
    causal = CausalOrder(h)
    assert causal.respects([r3, w, r1, r2])
    assert not causal.respects([r1, w, r2, r3])


def test_causal_transactions_reads_from():
    h = History()
    rw = h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": "v9"},
                                invoked_at=0, responded_at=10))
    ro = h.add(Operation.ro_txn("P2", read_set={"a": "v9", "b": None},
                                invoked_at=20, responded_at=30))
    causal = CausalOrder(h)
    assert causal.precedes(rw, ro)


def test_conflicting_read_onlys():
    h = History()
    rw = h.add(Operation.rw_txn("P1", read_set={}, write_set={"a": 1, "b": 2},
                                invoked_at=0, responded_at=5))
    ro_hit = h.add(Operation.ro_txn("P2", read_set={"b": 2}, invoked_at=6, responded_at=7))
    h.add(Operation.ro_txn("P3", read_set={"z": None}, invoked_at=6, responded_at=7))
    assert conflicting_read_onlys(h, rw) == [ro_hit]


def test_regular_constraint_edges():
    h = History()
    # w completes, then a conflicting read and a non-conflicting read start.
    w = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=10))
    r_conflict = h.add(Operation.read("P2", "x", 1, invoked_at=20, responded_at=30))
    r_other = h.add(Operation.read("P3", "y", None, invoked_at=20, responded_at=30))
    w_later = h.add(Operation.write("P4", "z", 2, invoked_at=40, responded_at=50))
    edges = set(regular_constraint_edges(h))
    assert (w.op_id, r_conflict.op_id) in edges
    assert (w.op_id, w_later.op_id) in edges
    # Non-conflicting read-only operations carry no regular constraint.
    assert (w.op_id, r_other.op_id) not in edges


def test_regular_constraint_edges_ignore_concurrent_writes():
    h = History()
    w = h.add(Operation.write("P1", "x", 1, invoked_at=0, responded_at=100))
    r = h.add(Operation.read("P2", "x", 1, invoked_at=10, responded_at=20))
    assert regular_constraint_edges(h) == []
    assert conflicting_read_onlys(h, w) == [r]
