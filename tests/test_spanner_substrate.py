"""Unit tests for the Spanner substrate: locks, versions, replication, config."""

import pytest

from repro.sim.engine import Environment
from repro.sim.network import spanner_wan
from repro.spanner.config import SpannerConfig, Variant
from repro.spanner.locks import LockMode, LockTable
from repro.spanner.mvstore import MultiVersionStore
from repro.spanner.replication import ReplicationLog


# --------------------------------------------------------------------- #
# Lock table
# --------------------------------------------------------------------- #
def test_read_locks_are_shared():
    env = Environment()
    table = LockTable(env)
    grants = []

    def txn(name, priority):
        granted = yield table.acquire("k", LockMode.READ, name, priority)
        grants.append((env.now, name, granted))

    env.process(txn("t1", 1.0))
    env.process(txn("t2", 2.0))
    env.run()
    assert [(n, g) for _, n, g in grants] == [("t1", True), ("t2", True)]


def test_write_lock_excludes_and_waits_for_release():
    env = Environment()
    table = LockTable(env)
    log = []

    def writer():
        granted = yield table.acquire("k", LockMode.WRITE, "old", 1.0)
        log.append(("old", env.now, granted))
        yield env.timeout(10)
        table.release_all("old")

    def younger_writer():
        yield env.timeout(1)
        granted = yield table.acquire("k", LockMode.WRITE, "young", 5.0)
        log.append(("young", env.now, granted))

    env.process(writer())
    env.process(younger_writer())
    env.run()
    assert ("old", 0, True) in log
    assert ("young", 10, True) in log


def test_wound_wait_older_wounds_younger():
    env = Environment()
    wounded = []
    table = LockTable(env, wound_callback=lambda txn: (wounded.append(txn),
                                                       table.release_all(txn)))
    log = []

    def younger():
        granted = yield table.acquire("k", LockMode.WRITE, "young", priority=100.0)
        log.append(("young", granted))

    def older():
        yield env.timeout(1)
        granted = yield table.acquire("k", LockMode.WRITE, "old", priority=1.0)
        log.append(("old", env.now, granted))

    env.process(younger())
    env.process(older())
    env.run()
    assert wounded == ["young"]
    assert ("old", 1, True) in log
    assert table.wounds == 1


def test_younger_requester_waits_for_older_holder():
    env = Environment()
    wounded = []
    table = LockTable(env, wound_callback=wounded.append)
    log = []

    def older():
        granted = yield table.acquire("k", LockMode.WRITE, "old", priority=1.0)
        log.append(("old", env.now, granted))
        yield env.timeout(20)
        table.release_all("old")

    def younger():
        yield env.timeout(1)
        granted = yield table.acquire("k", LockMode.WRITE, "young", priority=100.0)
        log.append(("young", env.now, granted))

    env.process(older())
    env.process(younger())
    env.run()
    assert wounded == []
    assert ("young", 20, True) in log


def test_release_all_cancels_waiting_requests():
    env = Environment()
    table = LockTable(env)
    results = []

    def holder():
        yield table.acquire("k", LockMode.WRITE, "holder", 1.0)

    def waiter():
        yield env.timeout(1)
        granted = yield table.acquire("k", LockMode.WRITE, "waiter", 2.0)
        results.append(granted)

    env.process(holder())
    env.process(waiter())

    def canceller():
        yield env.timeout(5)
        table.release_all("waiter")

    env.process(canceller())
    env.run(until=50)
    assert results == [False]


def test_lock_upgrade_and_holds():
    env = Environment()
    table = LockTable(env)

    def txn():
        yield table.acquire("k", LockMode.READ, "t1", 1.0)
        assert table.holds("t1", "k", LockMode.READ)
        assert not table.holds("t1", "k", LockMode.WRITE)
        yield table.acquire("k", LockMode.WRITE, "t1", 1.0)
        assert table.holds("t1", "k", LockMode.WRITE)

    env.process(txn())
    env.run()
    assert table.held_keys("t1") == {"k"}
    table.release_all("t1")
    assert table.held_keys("t1") == set()


# --------------------------------------------------------------------- #
# Multi-version store
# --------------------------------------------------------------------- #
def test_mvstore_versions_and_reads():
    store = MultiVersionStore()
    store.apply("x", "v1", 10.0, writer="t1")
    store.apply("x", "v2", 20.0, writer="t2")
    store.apply("y", "w1", 15.0, writer="t3")
    assert store.read_at("x", 5.0) == (0.0, None, None)
    assert store.read_at("x", 10.0) == (10.0, "v1", "t1")
    assert store.read_at("x", 19.9) == (10.0, "v1", "t1")
    assert store.read_at("x", 25.0) == (20.0, "v2", "t2")
    assert store.read_latest("x") == (20.0, "v2", "t2")
    assert store.read_latest("missing") == (0.0, None, None)
    assert store.latest_commit_ts("y") == 15.0
    assert store.max_commit_ts == 20.0
    assert store.version_count("x") == 2


def test_mvstore_out_of_order_applies():
    store = MultiVersionStore()
    store.apply("x", "late", 30.0)
    store.apply("x", "early", 10.0)
    assert store.read_at("x", 20.0)[1] == "early"
    assert store.read_latest("x")[1] == "late"


def test_mvstore_out_of_order_interleaved_with_appends():
    # The append fast path (commit_ts >= last) must not disturb the slow
    # out-of-order insert path: mix both and check every read boundary.
    store = MultiVersionStore()
    for ts, value in [(10.0, "a"), (30.0, "b"), (20.0, "mid"), (30.0, "b2"),
                      (40.0, "c"), (5.0, "first")]:
        store.apply("x", value, ts, writer=f"t{value}")
    assert [v[0] for v in store._versions["x"]] == [5.0, 10.0, 20.0, 30.0,
                                                    30.0, 40.0]
    assert store.read_at("x", 4.0) == (0.0, None, None)
    assert store.read_at("x", 7.0)[1] == "first"
    assert store.read_at("x", 25.0)[1] == "mid"
    # Equal timestamps: bisect_right semantics — the later apply wins.
    assert store.read_at("x", 30.0)[1] == "b2"
    assert store.read_latest("x")[1] == "c"
    assert store.max_commit_ts == 40.0
    assert store.version_count("x") == 6


def test_mvstore_equal_timestamp_appends_preserve_apply_order():
    store = MultiVersionStore()
    store.apply("x", "one", 10.0)
    store.apply("x", "two", 10.0)
    assert [v[1] for v in store._versions["x"]] == ["one", "two"]
    assert store.read_at("x", 10.0)[1] == "two"


def test_mvstore_apply_many():
    store = MultiVersionStore()
    store.apply_many({"a": 1, "b": 2}, 5.0, writer="t9")
    assert store.read_latest("a") == (5.0, 1, "t9")
    assert store.read_latest("b") == (5.0, 2, "t9")


# --------------------------------------------------------------------- #
# Replication
# --------------------------------------------------------------------- #
def test_replication_majority_delay_wan():
    env = Environment()
    log = ReplicationLog(env, leader_site="CA", replica_sites=["CA", "VA", "IR"],
                         latency=spanner_wan())
    # Majority of 3 is 2; the leader plus the nearest other replica (VA, 62ms).
    assert log.majority_delay() == 62.0


def test_replication_append_advances_safe_time():
    env = Environment()
    log = ReplicationLog(env, leader_site="VA", replica_sites=["CA", "VA", "IR"],
                         latency=spanner_wan())
    done = []

    def appender():
        yield env.process(log.append("prepare", {"txn": "t1"}, timestamp=42.0))
        done.append(env.now)

    env.process(appender())
    env.run()
    assert done == [62.0]
    assert log.max_write_ts == 42.0
    assert log.appends == 1


def test_replication_single_site_is_immediate():
    env = Environment()
    log = ReplicationLog(env, leader_site="DC", replica_sites=["DC"],
                         latency=spanner_wan())
    assert log.majority_delay() == 0.0


# --------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------- #
def test_shard_for_key_is_deterministic_and_balanced():
    config = SpannerConfig(num_shards=3)
    keys = [f"key{i}" for i in range(300)]
    assignment = {key: config.shard_for_key(key) for key in keys}
    assert assignment == {key: config.shard_for_key(key) for key in keys}
    counts = {}
    for shard in assignment.values():
        counts[shard] = counts.get(shard, 0) + 1
    assert len(counts) == 3
    assert all(count > 50 for count in counts.values())


def test_config_leader_sites_round_robin():
    config = SpannerConfig(num_shards=5, leader_sites=["CA", "VA", "IR"])
    assert config.leader_site(0) == "CA"
    assert config.leader_site(3) == "CA"
    assert config.leader_site(4) == "VA"


def test_min_commit_latency_prefers_local_coordinator():
    config = SpannerConfig()
    local = config.min_commit_latency_ms("CA", ["CA", "VA"], "CA")
    remote = config.min_commit_latency_ms("VA", ["CA", "VA"], "CA")
    assert local < remote
    # Local hops to/from the coordinator (0.2) + prepare RTT (62) + replication (62).
    assert local == pytest.approx(124.2)


def test_variant_enum_values():
    assert Variant("spanner") == Variant.SPANNER
    assert Variant("spanner-rss") == Variant.SPANNER_RSS
